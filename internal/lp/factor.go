package lp

import (
	"fmt"
	"math"
)

// factorizer abstracts the representation of the basis inverse B⁻¹ that the
// revised simplex works against. Two implementations exist: denseFactor
// keeps the explicit m×m inverse the solver shipped with (retained as a
// cross-check and as a fallback via Options.Factor), and luFactor keeps a
// sparse LU factorization with product-form eta updates (the default).
//
// Vector spaces: "row space" indexes constraint rows, "slot space" indexes
// basis positions (s.basis[i] is the column basic in slot i). FTRAN maps a
// row-space vector v to the slot-space solution of B x = v; BTRAN maps a
// slot-space vector c to the row-space solution of yᵀB = cᵀ.
type factorizer interface {
	// refactorize rebuilds the factorization from the current basis
	// columns. It fails when the basis is (numerically) singular.
	refactorize() error
	// resetIdentity installs the exact all-slack basis B = I without a
	// refactorization. Only valid when every basis slot holds its own
	// row's slack column.
	resetIdentity()
	// setUnitRow records that the basis column in slot i is now ±e_i (a
	// phase-1 artificial). Only valid immediately after resetIdentity,
	// before any update.
	setUnitRow(i int, sign float64)
	// ftranCol computes out = B⁻¹ A_col for a sparse column.
	ftranCol(col []nz, out []float64)
	// ftranVec computes out = B⁻¹ v for a dense row-space vector.
	ftranVec(v, out []float64)
	// btran computes out = (cᵀ B⁻¹)ᵀ for a slot-space vector c. Zero
	// entries of c are skipped, preserving the historical dual-pricing
	// arithmetic of the dense path bit for bit.
	btran(c, out []float64)
	// pivotRow returns row i of B⁻¹ (the BTRAN of e_i), valid until the
	// next update or refactorize. The dense implementation returns an
	// aliased slice; callers must treat it as read-only.
	pivotRow(i int) []float64
	// update replaces the basis column in slot `leaving` by the entering
	// column whose FTRAN image is w (w = B⁻¹ A_enter).
	update(w []float64, leaving int)
	// needsRefactor reports whether the representation wants a rebuild
	// after `since` updates (numerical drift for the dense inverse, eta
	// growth for the LU).
	needsRefactor(since int) bool
	// nnz is the nonzero count of the current factorization — m² for the
	// dense inverse, fill-in included for the LU.
	nnz() int
}

// newFactorizer picks the implementation requested by Options.Factor.
func newFactorizer(s *simplexState) factorizer {
	if s.opts.Factor == FactorDense {
		return newDenseFactor(s)
	}
	return newLUFactor(s)
}

// denseFactor is the original explicit dense basis inverse, rebuilt by
// Gauss–Jordan elimination and updated by elementary row operations
// (O(m²) per pivot). It remains available as Options.Factor = FactorDense.
type denseFactor struct {
	s    *simplexState
	m    int
	binv []float64 // dense m×m basis inverse, row-major
}

func newDenseFactor(s *simplexState) *denseFactor {
	return &denseFactor{s: s, m: s.m, binv: make([]float64, s.m*s.m)}
}

// refactorize rebuilds the dense basis inverse from the basis columns by
// Gauss–Jordan elimination with partial pivoting.
func (f *denseFactor) refactorize() error {
	m := f.m
	s := f.s
	// Assemble B column-wise into a dense row-major matrix.
	a := make([]float64, m*m)
	for i := 0; i < m; i++ {
		for _, e := range s.cols[s.basis[i]] {
			a[e.row*m+i] = e.coef
		}
	}
	inv := make([]float64, m*m)
	for i := 0; i < m; i++ {
		inv[i*m+i] = 1
	}
	for col := 0; col < m; col++ {
		// Partial pivot.
		piv, pmax := -1, 0.0
		for r := col; r < m; r++ {
			if v := math.Abs(a[r*m+col]); v > pmax {
				piv, pmax = r, v
			}
		}
		if piv < 0 || pmax < 1e-12 {
			return fmt.Errorf("lp: singular basis during refactorisation (row %d)", col)
		}
		if piv != col {
			for k := 0; k < m; k++ {
				a[col*m+k], a[piv*m+k] = a[piv*m+k], a[col*m+k]
				inv[col*m+k], inv[piv*m+k] = inv[piv*m+k], inv[col*m+k]
			}
		}
		d := a[col*m+col]
		for k := 0; k < m; k++ {
			a[col*m+k] /= d
			inv[col*m+k] /= d
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := a[r*m+col]
			if f == 0 {
				continue
			}
			for k := 0; k < m; k++ {
				a[r*m+k] -= f * a[col*m+k]
				inv[r*m+k] -= f * inv[col*m+k]
			}
		}
	}
	f.binv = inv
	return nil
}

func (f *denseFactor) resetIdentity() {
	m := f.m
	for i := range f.binv {
		f.binv[i] = 0
	}
	for i := 0; i < m; i++ {
		f.binv[i*m+i] = 1
	}
}

func (f *denseFactor) setUnitRow(i int, sign float64) {
	m := f.m
	for k := 0; k < m; k++ {
		f.binv[i*m+k] = 0
	}
	f.binv[i*m+i] = sign
}

func (f *denseFactor) ftranCol(col []nz, out []float64) {
	m := f.m
	for i := 0; i < m; i++ {
		out[i] = 0
	}
	for _, e := range col {
		c := e.coef
		for i := 0; i < m; i++ {
			out[i] += f.binv[i*m+e.row] * c
		}
	}
}

func (f *denseFactor) ftranVec(v, out []float64) {
	m := f.m
	for i := 0; i < m; i++ {
		sum := 0.0
		row := f.binv[i*m : i*m+m]
		for k := 0; k < m; k++ {
			sum += row[k] * v[k]
		}
		out[i] = sum
	}
}

func (f *denseFactor) btran(c, out []float64) {
	m := f.m
	for k := 0; k < m; k++ {
		out[k] = 0
	}
	for i := 0; i < m; i++ {
		ci := c[i]
		if ci == 0 {
			continue
		}
		row := f.binv[i*m : i*m+m]
		for k := 0; k < m; k++ {
			out[k] += ci * row[k]
		}
	}
}

func (f *denseFactor) pivotRow(i int) []float64 {
	return f.binv[i*f.m : i*f.m+f.m]
}

// update applies the elementary row transformation that moves B⁻¹ to the
// post-pivot basis: divide the pivot row by w[leaving], then eliminate the
// other rows.
func (f *denseFactor) update(w []float64, leaving int) {
	m := f.m
	prow := f.binv[leaving*m : leaving*m+m]
	inv := 1 / w[leaving]
	for k := 0; k < m; k++ {
		prow[k] *= inv
	}
	for i := 0; i < m; i++ {
		if i == leaving {
			continue
		}
		fi := w[i]
		if fi == 0 {
			continue
		}
		row := f.binv[i*m : i*m+m]
		for k := 0; k < m; k++ {
			row[k] -= fi * prow[k]
		}
	}
}

func (f *denseFactor) needsRefactor(since int) bool { return since >= 256 }

func (f *denseFactor) nnz() int { return f.m * f.m }
