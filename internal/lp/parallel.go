package lp

import "sync"

// chunkPool is a pool of persistent worker goroutines used to parallelize
// the simplex pricing step. One pool lives for the duration of a single
// Solve, so the goroutine spawn cost is paid once, not per iteration.
//
// Determinism contract: run partitions an index range into one contiguous
// chunk per worker, with boundaries that depend only on (n, workers).
// Workers never share mutable state — each writes its own result slot —
// so every per-column float computation is performed with exactly the
// same operands and order as the sequential scan, and merged results are
// bit-identical for any worker count.
type chunkPool struct {
	workers int
	jobs    chan func()
	wg      sync.WaitGroup
	once    sync.Once
}

// newChunkPool returns a pool with the given worker count (≥ 2).
func newChunkPool(workers int) *chunkPool {
	p := &chunkPool{workers: workers, jobs: make(chan func(), workers)}
	for i := 0; i < workers; i++ {
		go func() {
			for f := range p.jobs {
				f()
				p.wg.Done()
			}
		}()
	}
	return p
}

// run splits [0, n) into p.workers contiguous chunks and invokes
// f(lo, hi, chunk) for each on the pool, blocking until all complete.
// Chunk boundaries are a pure function of (n, p.workers).
func (p *chunkPool) run(n int, f func(lo, hi, chunk int)) {
	per := (n + p.workers - 1) / p.workers
	for c := 0; c < p.workers; c++ {
		lo := c * per
		hi := lo + per
		if lo >= n {
			break
		}
		if hi > n {
			hi = n
		}
		lo, hi, c := lo, hi, c
		p.wg.Add(1)
		p.jobs <- func() { f(lo, hi, c) }
	}
	p.wg.Wait()
}

// close stops the workers. The pool must not be used afterwards.
func (p *chunkPool) close() {
	p.once.Do(func() { close(p.jobs) })
}
