package lp

import (
	"fmt"
	"math"
)

// luFactor represents B⁻¹ as a sparse LU factorization of the basis plus a
// product-form eta file accumulated between refactorizations.
//
// The factorization eliminates one (row, slot) pair per step k:
//
//	rowOf[k]  — the constraint row pivoted at step k
//	slotOf[k] — the basis slot (column) pivoted at step k
//
// In step space the basis reads B[rowOf[k1]][slotOf[k2]] = (L·U)[k1][k2]
// with L unit lower triangular and U upper triangular. L is stored by
// elimination step as the multipliers applied below the pivot (indexed by
// original row), U by step as the pivot value uDiag[k] plus the surviving
// entries of the pivot row (indexed by later step). Pivot order is chosen
// by singleton elimination first — slack columns and singleton rows cost
// no fill-in at all — then Markowitz minimum (r−1)(c−1) with threshold
// partial pivoting on the remaining "bump".
//
// Basis changes append eta vectors (the FTRAN image of the entering
// column) instead of touching L/U; FTRAN applies them oldest first, BTRAN
// newest first. needsRefactor bounds the eta file so solves stay within a
// constant factor of the fresh-factorization cost.
type luFactor struct {
	s *simplexState
	m int

	rowOf   []int32 // step → original row
	slotOf  []int32 // step → basis slot
	posRow  []int32 // original row → step (inverse of rowOf)
	posSlot []int32 // basis slot → step (inverse of slotOf)

	lIdx  [][]int32   // L, by step: original-row indices below the pivot
	lVal  [][]float64 // …and their multipliers
	uDiag []float64   // pivot value at each step
	uIdx  [][]int32   // U, by step: later-step indices of the pivot row
	uVal  [][]float64 // …and their values
	fnnz  int         // L+U+diag nonzeros after the last refactorization

	etas   []luEta
	etaNNZ int

	work  []float64 // row-space scratch
	stepv []float64 // step-space scratch
	prow  []float64 // pivotRow output buffer
	cbuf  []float64 // pivotRow unit-vector input buffer
}

// luEta is one product-form update: the basis column in slot r was
// replaced by a column whose FTRAN image is w; wr = w[r] and idx/val hold
// the remaining nonzeros of w.
type luEta struct {
	r   int32
	wr  float64
	idx []int32
	val []float64
}

func newLUFactor(s *simplexState) *luFactor {
	m := s.m
	return &luFactor{
		s: s, m: m,
		rowOf: make([]int32, m), slotOf: make([]int32, m),
		posRow: make([]int32, m), posSlot: make([]int32, m),
		lIdx: make([][]int32, m), lVal: make([][]float64, m),
		uDiag: make([]float64, m),
		uIdx:  make([][]int32, m), uVal: make([][]float64, m),
		work: make([]float64, m), stepv: make([]float64, m),
		prow: make([]float64, m), cbuf: make([]float64, m),
	}
}

func (f *luFactor) resetIdentity() {
	for k := 0; k < f.m; k++ {
		f.rowOf[k], f.slotOf[k] = int32(k), int32(k)
		f.posRow[k], f.posSlot[k] = int32(k), int32(k)
		f.uDiag[k] = 1
		f.lIdx[k], f.lVal[k] = nil, nil
		f.uIdx[k], f.uVal[k] = nil, nil
	}
	f.fnnz = f.m
	f.etas, f.etaNNZ = f.etas[:0], 0
}

func (f *luFactor) setUnitRow(i int, sign float64) {
	f.uDiag[f.posRow[i]] = sign
}

// luMarkowitzThreshold rejects pivots smaller than this fraction of their
// column's largest entry, trading a little fill-in for stability.
const luMarkowitzThreshold = 0.01

// refactorize computes a fresh LU factorization of the current basis and
// clears the eta file.
func (f *luFactor) refactorize() error {
	m := f.m
	s := f.s

	// Active-submatrix working copies, columns indexed by basis slot.
	// Columns stay compact (entries of eliminated rows are removed as the
	// rows go), so colRow[s] always lists exactly the active entries.
	colRow := make([][]int32, m)
	colVal := make([][]float64, m)
	rowLen := make([]int, m)
	colLen := make([]int, m)
	nnzTotal := 0
	for i := 0; i < m; i++ {
		col := s.cols[s.basis[i]]
		cr := make([]int32, 0, len(col))
		cv := make([]float64, 0, len(col))
		for _, e := range col {
			cr = append(cr, int32(e.row))
			cv = append(cv, e.coef)
			rowLen[e.row]++
		}
		colRow[i], colVal[i] = cr, cv
		colLen[i] = len(cr)
		nnzTotal += len(cr)
	}
	// rowSlot[r] lists the slots that ever held an entry in row r; slots
	// already eliminated are skipped on use (entries only disappear when
	// their row or column is eliminated, so no stale active slots occur).
	rowSlot := make([][]int32, m)
	for r := 0; r < m; r++ {
		rowSlot[r] = make([]int32, 0, rowLen[r])
	}
	for sl := 0; sl < m; sl++ {
		for _, r := range colRow[sl] {
			rowSlot[r] = append(rowSlot[r], int32(sl))
		}
	}

	for k := 0; k < m; k++ {
		f.posRow[k], f.posSlot[k] = -1, -1
	}
	// uSlot holds U entries by original slot; remapped to steps at the end.
	uSlot := make([][]int32, m)

	var colQ, rowQ []int32
	for sl := 0; sl < m; sl++ {
		if colLen[sl] == 1 {
			colQ = append(colQ, int32(sl))
		}
	}
	for r := 0; r < m; r++ {
		if rowLen[r] == 1 {
			rowQ = append(rowQ, int32(r))
		}
	}

	f.fnnz = m
	for k := 0; k < m; k++ {
		pr, pc := int32(-1), int32(-1)
		// Singleton column: pivoting on it adds no L entries and no fill.
		for pc < 0 && len(colQ) > 0 {
			c := colQ[len(colQ)-1]
			colQ = colQ[:len(colQ)-1]
			if f.posSlot[c] < 0 && colLen[c] == 1 {
				pr, pc = colRow[c][0], c
			}
		}
		// Singleton row: one multiplier column, no fill.
		for pc < 0 && len(rowQ) > 0 {
			r := rowQ[len(rowQ)-1]
			rowQ = rowQ[:len(rowQ)-1]
			if f.posRow[r] >= 0 || rowLen[r] != 1 {
				continue
			}
			for _, sl := range rowSlot[r] {
				if f.posSlot[sl] >= 0 {
					continue
				}
				for _, rr := range colRow[sl] {
					if rr == r {
						pr, pc = r, sl
						break
					}
				}
				if pc >= 0 {
					break
				}
			}
		}
		// Markowitz on the bump: minimize (rowLen−1)(colLen−1) over
		// entries that pass the threshold test against their column max;
		// ties prefer the larger magnitude. The scan order is fixed, so
		// pivot choice is deterministic.
		if pc < 0 {
			bestMC := int64(math.MaxInt64)
			bestAbs := 0.0
			for sl := 0; sl < m; sl++ {
				if f.posSlot[sl] >= 0 {
					continue
				}
				cmax := 0.0
				for _, v := range colVal[sl] {
					if av := math.Abs(v); av > cmax {
						cmax = av
					}
				}
				if cmax < 1e-12 {
					continue
				}
				floor := luMarkowitzThreshold * cmax
				for idx, r := range colRow[sl] {
					av := math.Abs(colVal[sl][idx])
					if av < floor || av < 1e-12 {
						continue
					}
					mc := int64(rowLen[r]-1) * int64(colLen[sl]-1)
					if mc < bestMC || (mc == bestMC && av > bestAbs) {
						bestMC, bestAbs = mc, av
						pr, pc = r, int32(sl)
					}
				}
			}
			if pc < 0 {
				return fmt.Errorf("lp: singular basis during refactorisation (step %d of %d)", k, m)
			}
		}

		// Collect the pivot value and the L multipliers from column pc.
		piv := 0.0
		for idx, r := range colRow[pc] {
			if r == pr {
				piv = colVal[pc][idx]
				break
			}
		}
		if math.Abs(piv) < 1e-12 {
			return fmt.Errorf("lp: singular basis during refactorisation (step %d of %d)", k, m)
		}
		var li []int32
		var lv []float64
		for idx, r := range colRow[pc] {
			if r == pr {
				continue
			}
			li = append(li, r)
			lv = append(lv, colVal[pc][idx]/piv)
		}
		// Collect the U row from the other active entries of row pr,
		// removing them from their columns (row pr leaves the bump).
		var ui []int32
		var uv []float64
		for _, sl := range rowSlot[pr] {
			if sl == pc || f.posSlot[sl] >= 0 {
				continue
			}
			for idx, r := range colRow[sl] {
				if r != pr {
					continue
				}
				ui = append(ui, sl)
				uv = append(uv, colVal[sl][idx])
				last := len(colRow[sl]) - 1
				colRow[sl][idx], colVal[sl][idx] = colRow[sl][last], colVal[sl][last]
				colRow[sl], colVal[sl] = colRow[sl][:last], colVal[sl][:last]
				colLen[sl]--
				if colLen[sl] == 1 {
					colQ = append(colQ, sl)
				}
				break
			}
		}
		f.posRow[pr], f.posSlot[pc] = int32(k), int32(k)
		f.rowOf[k], f.slotOf[k] = pr, pc
		f.uDiag[k] = piv
		f.lIdx[k], f.lVal[k] = li, lv
		uSlot[k], f.uVal[k] = ui, uv
		f.fnnz += len(li) + len(ui)
		// Retire column pc.
		for _, r := range colRow[pc] {
			if r == pr {
				continue
			}
			rowLen[r]--
			if rowLen[r] == 1 {
				rowQ = append(rowQ, r)
			}
		}
		colRow[pc], colVal[pc] = nil, nil
		// Schur update: a[r][sl] -= mult · u for every (multiplier row,
		// U entry) pair, creating fill-in where no entry existed.
		for lidx, r := range li {
			mult := lv[lidx]
			for uidx, sl := range ui {
				delta := mult * f.uVal[k][uidx]
				found := false
				for idx, rr := range colRow[sl] {
					if rr == r {
						colVal[sl][idx] -= delta
						found = true
						break
					}
				}
				if !found {
					colRow[sl] = append(colRow[sl], r)
					colVal[sl] = append(colVal[sl], -delta)
					colLen[sl]++
					rowLen[r]++
					rowSlot[r] = append(rowSlot[r], sl)
				}
			}
		}
	}

	// Remap U entries from slot indices to step indices.
	for k := 0; k < m; k++ {
		ui := uSlot[k]
		if len(ui) == 0 {
			f.uIdx[k] = nil
			continue
		}
		mapped := make([]int32, len(ui))
		for t, sl := range ui {
			mapped[t] = f.posSlot[sl]
		}
		f.uIdx[k] = mapped
	}
	f.etas, f.etaNNZ = f.etas[:0], 0
	return nil
}

// solveLU runs the triangular solves for B x = v: v is a row-space vector
// (destroyed), out receives the slot-space solution, and the eta file is
// applied oldest first.
func (f *luFactor) solveLU(v, out []float64) {
	m := f.m
	z := f.stepv
	// Forward: L z = Pv. Zero skips exploit sparse right-hand sides.
	for k := 0; k < m; k++ {
		t := v[f.rowOf[k]]
		if t != 0 {
			li, lv := f.lIdx[k], f.lVal[k]
			for idx, r := range li {
				v[r] -= lv[idx] * t
			}
		}
		z[k] = t
	}
	// Backward: U x' = z (step space).
	for k := m - 1; k >= 0; k-- {
		acc := z[k]
		ui, uv := f.uIdx[k], f.uVal[k]
		for idx, j := range ui {
			acc -= uv[idx] * z[j]
		}
		z[k] = acc / f.uDiag[k]
	}
	for k := 0; k < m; k++ {
		out[f.slotOf[k]] = z[k]
	}
	// Product-form updates, oldest first.
	for e := range f.etas {
		et := &f.etas[e]
		t := out[et.r] / et.wr
		if t != 0 {
			for idx, i := range et.idx {
				out[i] -= et.val[idx] * t
			}
		}
		out[et.r] = t
	}
}

func (f *luFactor) ftranCol(col []nz, out []float64) {
	m := f.m
	v := f.work
	for i := 0; i < m; i++ {
		v[i] = 0
	}
	for _, e := range col {
		v[e.row] += e.coef
	}
	f.solveLU(v, out)
}

func (f *luFactor) ftranVec(v, out []float64) {
	copy(f.work, v)
	f.solveLU(f.work, out)
}

// btran solves yᵀ B = cᵀ: etas newest first, then Uᵀ forward, then Lᵀ
// backward, writing the row-space result into out.
func (f *luFactor) btran(c, out []float64) {
	m := f.m
	buf := f.work
	copy(buf, c)
	for e := len(f.etas) - 1; e >= 0; e-- {
		et := &f.etas[e]
		sum := 0.0
		for idx, i := range et.idx {
			sum += buf[i] * et.val[idx]
		}
		buf[et.r] = (buf[et.r] - sum) / et.wr
	}
	// Uᵀ t = ĉ with ĉ[k] = buf[slotOf[k]], solved forward with scattering.
	t := f.stepv
	for k := 0; k < m; k++ {
		t[k] = buf[f.slotOf[k]]
	}
	for k := 0; k < m; k++ {
		tk := t[k] / f.uDiag[k]
		t[k] = tk
		if tk != 0 {
			ui, uv := f.uIdx[k], f.uVal[k]
			for idx, j := range ui {
				t[j] -= uv[idx] * tk
			}
		}
	}
	// Lᵀ y = t, backward; rows pivoted later are already solved.
	for k := m - 1; k >= 0; k-- {
		a := t[k]
		li, lv := f.lIdx[k], f.lVal[k]
		for idx, r := range li {
			a -= lv[idx] * out[r]
		}
		out[f.rowOf[k]] = a
	}
}

func (f *luFactor) pivotRow(i int) []float64 {
	for k := range f.cbuf {
		f.cbuf[k] = 0
	}
	f.cbuf[i] = 1
	f.btran(f.cbuf, f.prow)
	return f.prow
}

func (f *luFactor) update(w []float64, leaving int) {
	var idx []int32
	var val []float64
	for i, wi := range w {
		if wi != 0 && i != leaving {
			idx = append(idx, int32(i))
			val = append(val, wi)
		}
	}
	f.etas = append(f.etas, luEta{r: int32(leaving), wr: w[leaving], idx: idx, val: val})
	f.etaNNZ += len(idx) + 1
}

// needsRefactor bounds the eta file: once applying the etas costs more
// than a couple of fresh triangular solves, refactorizing wins. The
// absolute cap matches the dense path's drift bound.
func (f *luFactor) needsRefactor(since int) bool {
	return since >= 256 || f.etaNNZ > 4*f.fnnz+2*f.m
}

func (f *luFactor) nnz() int { return f.fnnz }
