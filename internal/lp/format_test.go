package lp

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatRoundTrip(t *testing.T) {
	p := New("demo problem")
	x := p.AddVar("x one", 0, 3, -1)
	y := p.AddVar("y", -2, Inf, 2.5)
	z := p.AddVar("z", math.Inf(-1), Inf, 0)
	c1 := p.AddCon("cap", LE, 4)
	p.SetCoef(c1, x, 1)
	p.SetCoef(c1, y, 1.5)
	c2 := p.AddCon("bal", EQ, 0)
	p.SetCoef(c2, y, 1)
	p.SetCoef(c2, z, -1)
	c3 := p.AddCon("floor", GE, -3)
	p.SetCoef(c3, z, 2)

	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name() != "demo_problem" {
		t.Errorf("name = %q", q.Name())
	}
	if q.NumVars() != 3 || q.NumCons() != 3 {
		t.Fatalf("shape %d/%d", q.NumVars(), q.NumCons())
	}
	for i := 0; i < 3; i++ {
		lo1, hi1 := p.Bounds(Var(i))
		lo2, hi2 := q.Bounds(Var(i))
		if lo1 != lo2 || hi1 != hi2 || p.Cost(Var(i)) != q.Cost(Var(i)) {
			t.Errorf("var %d mismatch", i)
		}
		for j := 0; j < 3; j++ {
			if p.Coef(Con(j), Var(i)) != q.Coef(Con(j), Var(i)) {
				t.Errorf("coef (%d,%d) mismatch", j, i)
			}
		}
	}
	// Same optimum on both.
	a, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Status != b.Status {
		t.Fatalf("status %v vs %v", a.Status, b.Status)
	}
	if a.Status == Optimal && math.Abs(a.Objective-b.Objective) > 1e-9 {
		t.Errorf("objective %g vs %g", a.Objective, b.Objective)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"nonsense 1 2\n",
		"var onlyname\n",
		"var x bad 1 0\n",
		"var x 0 bad 0\n",
		"var x 0 1 bad\n",
		"con c ?? 3\n",
		"con c <= bad\n",
		"con c <=\n",
		"coef 0 0 1\n",                          // no con/var declared
		"var x 0 1 0\ncon c <= 1\ncoef 5 0 1\n", // bad indices
		"var x 0 1 0\ncon c <= 1\ncoef 0 9 1\n",
		"var x 0 1 0\ncon c <= 1\ncoef 0 0 bad\n",
		"problem a b\n",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
	// Comments and blanks are fine.
	p, err := Parse(strings.NewReader("# header\n\nproblem p\nvar x 0 inf 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumVars() != 1 {
		t.Error("comment handling broken")
	}
}

func TestQuickFormatRoundTripSolves(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng)
		var buf bytes.Buffer
		if err := Write(&buf, p); err != nil {
			return false
		}
		q, err := Parse(&buf)
		if err != nil {
			t.Logf("seed %d: parse: %v", seed, err)
			return false
		}
		a, err := p.Solve(Options{})
		if err != nil {
			return false
		}
		b, err := q.Solve(Options{})
		if err != nil {
			return false
		}
		if a.Status != b.Status {
			t.Logf("seed %d: status %v vs %v", seed, a.Status, b.Status)
			return false
		}
		if a.Status == Optimal && math.Abs(a.Objective-b.Objective) > 1e-6*(1+math.Abs(a.Objective)) {
			t.Logf("seed %d: obj %g vs %g", seed, a.Objective, b.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
