package lp

import (
	"fmt"
	"math"
)

// SolveDense solves the problem with a textbook two-phase dense tableau
// simplex using Bland's rule. It is intended as a slow, independent
// reference implementation for testing Solve; complexity is O(rows²·cols)
// per iteration, so use it only on small problems.
//
// Bounds are compiled away: variables are shifted to a zero lower bound
// (free variables are split into a difference of nonnegatives) and finite
// upper bounds become explicit rows.
func (p *Problem) SolveDense(maxIters int) (*Solution, error) {
	if maxIters <= 0 {
		maxIters = 50000
	}
	const tol = 1e-9

	// Column plan: for each structural variable, either one shifted
	// column (finite lower) or a plus/minus pair (free below).
	type colPlan struct {
		plus, minus int // tableau column indices; minus == -1 if unused
		shift       float64
	}
	plans := make([]colPlan, len(p.vars))
	ncols := 0
	extraRows := 0
	for i := range p.vars {
		v := &p.vars[i]
		if !math.IsInf(v.lower, -1) {
			plans[i] = colPlan{plus: ncols, minus: -1, shift: v.lower}
			ncols++
			if !math.IsInf(v.upper, 1) {
				extraRows++
			}
		} else if !math.IsInf(v.upper, 1) {
			// (-Inf, u]: substitute x = u − x', x' ≥ 0.
			plans[i] = colPlan{plus: -1, minus: ncols, shift: v.upper}
			ncols++
		} else {
			plans[i] = colPlan{plus: ncols, minus: ncols + 1}
			ncols += 2
		}
	}
	nStructCols := ncols
	m := len(p.cons) + extraRows

	// Dense constraint matrix over the structural columns plus rhs and
	// senses; upper-bound rows appended after the user rows.
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, nStructCols)
	}
	rhs := make([]float64, m)
	senses := make([]Sense, m)
	for i := range p.cons {
		rhs[i] = p.cons[i].rhs
		senses[i] = p.cons[i].sense
	}
	for j := range p.vars {
		pl := plans[j]
		for _, e := range p.vars[j].col {
			if pl.plus >= 0 {
				a[e.row][pl.plus] += e.coef
			}
			if pl.minus >= 0 {
				a[e.row][pl.minus] -= e.coef
			}
			rhs[e.row] -= e.coef * pl.shift
		}
	}
	ub := len(p.cons)
	for j := range p.vars {
		v := &p.vars[j]
		pl := plans[j]
		if pl.plus >= 0 && pl.minus == -1 && !math.IsInf(v.upper, 1) {
			a[ub][pl.plus] = 1
			rhs[ub] = v.upper - v.lower
			senses[ub] = LE
			ub++
		}
	}

	// Objective over tableau columns, and the constant from shifting.
	cost := make([]float64, nStructCols)
	shiftObj := 0.0
	for j := range p.vars {
		pl := plans[j]
		if pl.plus >= 0 {
			cost[pl.plus] += p.vars[j].cost
		}
		if pl.minus >= 0 {
			cost[pl.minus] -= p.vars[j].cost
		}
		shiftObj += p.vars[j].cost * pl.shift
	}

	// Add slacks/surplus, normalise rhs ≥ 0, then artificials for every
	// row (simple and robust).
	for i := 0; i < m; i++ {
		switch senses[i] {
		case LE, GE:
			ncols++
		}
	}
	slackStart := nStructCols
	artStart := ncols
	ncols += m
	tab := make([][]float64, m)
	for i := range tab {
		tab[i] = make([]float64, ncols+1) // last column is rhs
		copy(tab[i], a[i])
	}
	sc := slackStart
	for i := 0; i < m; i++ {
		switch senses[i] {
		case LE:
			tab[i][sc] = 1
			sc++
		case GE:
			tab[i][sc] = -1
			sc++
		}
	}
	for i := 0; i < m; i++ {
		tab[i][ncols] = rhs[i]
		if tab[i][ncols] < 0 {
			for k := 0; k <= ncols; k++ {
				tab[i][k] = -tab[i][k]
			}
		}
		tab[i][artStart+i] = 1
	}
	basis := make([]int, m)
	for i := range basis {
		basis[i] = artStart + i
	}

	fullCost := make([]float64, ncols)
	copy(fullCost, cost)
	phase1Cost := make([]float64, ncols)
	for i := 0; i < m; i++ {
		phase1Cost[artStart+i] = 1
	}

	iters := 0
	runPhase := func(c []float64, banned int) (Status, error) {
		for {
			if iters >= maxIters {
				return IterLimit, nil
			}
			// Reduced costs: d_j = c_j − c_B^T tab_col_j.
			entering := -1
			for j := 0; j < ncols; j++ {
				if j >= banned {
					break
				}
				inB := false
				for _, bj := range basis {
					if bj == j {
						inB = true
						break
					}
				}
				if inB {
					continue
				}
				d := c[j]
				for i := 0; i < m; i++ {
					d -= c[basis[i]] * tab[i][j]
				}
				if d < -tol {
					entering = j // Bland: first improving index
					break
				}
			}
			if entering == -1 {
				return Optimal, nil
			}
			leaving := -1
			best := math.Inf(1)
			for i := 0; i < m; i++ {
				if tab[i][entering] > tol {
					r := tab[i][ncols] / tab[i][entering]
					if r < best-tol || (r < best+tol && (leaving == -1 || basis[i] < basis[leaving])) {
						best = r
						leaving = i
					}
				}
			}
			if leaving == -1 {
				return Unbounded, nil
			}
			piv := tab[leaving][entering]
			for k := 0; k <= ncols; k++ {
				tab[leaving][k] /= piv
			}
			for i := 0; i < m; i++ {
				if i == leaving {
					continue
				}
				f := tab[i][entering]
				if f == 0 {
					continue
				}
				for k := 0; k <= ncols; k++ {
					tab[i][k] -= f * tab[leaving][k]
				}
			}
			basis[leaving] = entering
			iters++
		}
	}

	st, err := runPhase(phase1Cost, ncols)
	if err != nil {
		return nil, err
	}
	if st != Optimal {
		return &Solution{Status: st, Iters: iters}, nil
	}
	p1obj := 0.0
	for i := 0; i < m; i++ {
		if basis[i] >= artStart {
			p1obj += tab[i][ncols]
		}
	}
	if p1obj > 1e-6 {
		return &Solution{Status: Infeasible, Iters: iters}, nil
	}
	// Pivot lingering zero-valued artificials out where possible.
	for i := 0; i < m; i++ {
		if basis[i] < artStart {
			continue
		}
		for j := 0; j < artStart; j++ {
			if math.Abs(tab[i][j]) > 1e-7 {
				piv := tab[i][j]
				for k := 0; k <= ncols; k++ {
					tab[i][k] /= piv
				}
				for r := 0; r < m; r++ {
					if r == i {
						continue
					}
					f := tab[r][j]
					if f == 0 {
						continue
					}
					for k := 0; k <= ncols; k++ {
						tab[r][k] -= f * tab[i][k]
					}
				}
				basis[i] = j
				break
			}
		}
	}

	st, err = runPhase(fullCost, artStart)
	if err != nil {
		return nil, err
	}
	if st != Optimal {
		return &Solution{Status: st, Iters: iters}, nil
	}

	// Extract structural values: undo shifts and splits.
	xt := make([]float64, ncols)
	for i := 0; i < m; i++ {
		if basis[i] >= artStart && tab[i][ncols] > 1e-6 {
			return nil, fmt.Errorf("lp: dense solver ended with positive artificial %g", tab[i][ncols])
		}
		xt[basis[i]] = tab[i][ncols]
	}
	sol := &Solution{Status: Optimal, Iters: iters, X: make([]float64, len(p.vars))}
	for j := range p.vars {
		pl := plans[j]
		val := pl.shift
		if pl.plus >= 0 {
			val += xt[pl.plus]
		}
		if pl.minus >= 0 {
			val -= xt[pl.minus]
		}
		sol.X[j] = val
	}
	sol.Objective = p.Objective(sol.X)
	_ = shiftObj
	return sol, nil
}
