package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomProblem builds a small random LP. About half the variables get a
// finite upper bound; rows mix all three senses. Coefficients are kept in a
// moderate range so the dense reference stays well-conditioned.
func randomProblem(rng *rand.Rand) *Problem {
	p := New("random")
	n := 1 + rng.Intn(8)
	m := 1 + rng.Intn(6)
	cons := make([]Con, m)
	for i := 0; i < m; i++ {
		sense := Sense(rng.Intn(3))
		rhs := math.Round(rng.Float64()*40-10) / 2
		cons[i] = p.AddCon("c", sense, rhs)
	}
	for j := 0; j < n; j++ {
		upper := Inf
		if rng.Intn(2) == 0 {
			upper = float64(1 + rng.Intn(10))
		}
		cost := math.Round(rng.Float64()*20-10) / 2
		v := p.AddVar("x", 0, upper, cost)
		for i := 0; i < m; i++ {
			if rng.Intn(3) == 0 {
				continue // sparsity
			}
			coef := math.Round(rng.Float64()*12-6) / 2
			p.SetCoef(cons[i], v, coef)
		}
	}
	return p
}

// TestQuickAgainstDense cross-checks the revised bounded simplex against
// the dense tableau reference on random problems: statuses must agree and
// optimal objectives must match.
func TestQuickAgainstDense(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng)
		rev, err := p.Solve(Options{})
		if err != nil {
			t.Logf("seed %d: revised error: %v", seed, err)
			return false
		}
		den, err := p.SolveDense(0)
		if err != nil {
			t.Logf("seed %d: dense error: %v", seed, err)
			return false
		}
		if rev.Status == IterLimit || den.Status == IterLimit {
			return true // inconclusive; should not happen at this size
		}
		if rev.Status != den.Status {
			t.Logf("seed %d: status revised=%v dense=%v", seed, rev.Status, den.Status)
			return false
		}
		if rev.Status != Optimal {
			return true
		}
		if err := p.CheckFeasible(rev.X, 1e-6); err != nil {
			t.Logf("seed %d: revised solution infeasible: %v", seed, err)
			return false
		}
		if err := p.CheckFeasible(den.X, 1e-6); err != nil {
			t.Logf("seed %d: dense solution infeasible: %v", seed, err)
			return false
		}
		if math.Abs(rev.Objective-den.Objective) > 1e-5*(1+math.Abs(den.Objective)) {
			t.Logf("seed %d: objective revised=%g dense=%g", seed, rev.Objective, den.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickBlandMatchesDantzig verifies that forcing Bland's rule reaches
// the same optimum as the default pricing.
func TestQuickBlandMatchesDantzig(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
		p := randomProblem(rng)
		a, err := p.Solve(Options{})
		if err != nil {
			return false
		}
		b, err := p.Solve(Options{Bland: true})
		if err != nil {
			return false
		}
		if a.Status != b.Status {
			t.Logf("seed %d: status dantzig=%v bland=%v", seed, a.Status, b.Status)
			return false
		}
		if a.Status == Optimal && math.Abs(a.Objective-b.Objective) > 1e-5*(1+math.Abs(a.Objective)) {
			t.Logf("seed %d: obj dantzig=%g bland=%g", seed, a.Objective, b.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickDualWeakDuality checks weak duality on random problems whose
// rows are all GE with nonnegative variables: y·b ≤ c·x for feasible y
// implied by simplex optimality.
func TestQuickDualWeakDuality(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0x0ddba11))
		p := New("dual")
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(4)
		cons := make([]Con, m)
		rhs := make([]float64, m)
		for i := 0; i < m; i++ {
			rhs[i] = float64(rng.Intn(10))
			cons[i] = p.AddCon("c", GE, rhs[i])
		}
		for j := 0; j < n; j++ {
			v := p.AddVar("x", 0, Inf, float64(1+rng.Intn(9)))
			for i := 0; i < m; i++ {
				p.SetCoef(cons[i], v, float64(rng.Intn(4)))
			}
		}
		sol, err := p.Solve(Options{})
		if err != nil || sol.Status != Optimal {
			return true // infeasible/unbounded rows are fine here
		}
		dual := 0.0
		for i := 0; i < m; i++ {
			dual += sol.Dual[i] * rhs[i]
		}
		if dual > sol.Objective+1e-6*(1+math.Abs(sol.Objective)) {
			t.Logf("seed %d: weak duality violated: %g > %g", seed, dual, sol.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}
