package lp

import (
	"math/rand"
	"testing"
)

// TestTranslateBasisIdentity round-trips a basis through an identity
// translation and warm-starts from it: the solve must accept it and stop
// almost immediately.
func TestTranslateBasisIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := lipsShapedLP(8, 6, 4, rand.New(rand.NewSource(11)), rng)
	base, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Status != Optimal || base.Basis == nil {
		t.Fatalf("unusable base solve: %v", base.Status)
	}
	varMap := make([]int, p.NumVars())
	for j := range varMap {
		varMap[j] = j
	}
	conMap := make([]int, p.NumCons())
	for i := range conMap {
		conMap[i] = i
	}
	tb := TranslateBasis(base.Basis, varMap, conMap, p.NumVars(), p.NumCons())
	if tb == nil {
		t.Fatal("identity translation returned nil")
	}
	warm, err := p.Solve(Options{WarmStart: tb, Presolve: PresolveOff})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatal("identity-translated basis rejected")
	}
	if warm.Iters > 2 {
		t.Errorf("%d iterations from own translated optimum, want ≤ 2", warm.Iters)
	}
	if d := relDiff(warm.Objective, base.Objective); d > 1e-9 {
		t.Errorf("objective drifted: %g vs %g", warm.Objective, base.Objective)
	}
}

// shrinkProblem rebuilds p without the variables in drop (a set of old
// indices), returning the new problem and the varMap old→new.
func shrinkProblem(p *Problem, drop map[int]bool) (*Problem, []int) {
	q := New(p.Name() + "-shrunk")
	for i := 0; i < p.NumCons(); i++ {
		q.AddCon(p.ConName(Con(i)), p.ConSense(Con(i)), p.ConRHS(Con(i)))
	}
	varMap := make([]int, p.NumVars())
	for j := 0; j < p.NumVars(); j++ {
		if drop[j] {
			varMap[j] = -1
			continue
		}
		lo, hi := p.Bounds(Var(j))
		v := q.AddVar(p.VarName(Var(j)), lo, hi, p.Cost(Var(j)))
		for i := 0; i < p.NumCons(); i++ {
			if c := p.Coef(Con(i), Var(j)); c != 0 {
				q.SetCoef(Con(i), v, c)
			}
		}
		varMap[j] = int(v)
	}
	return q, varMap
}

// TestTranslateBasisColumnRemoval drops a deterministic subset of columns
// — mimicking machines leaving the instance — translates the stale basis,
// and checks the warm (plus dual-repaired) solve against a cold solve of
// the shrunken problem.
func TestTranslateBasisColumnRemoval(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := lipsShapedLP(4+rng.Intn(8), 3+rng.Intn(6), 2+rng.Intn(4),
			rand.New(rand.NewSource(seed+500)), rng)
		base, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if base.Status != Optimal || base.Basis == nil {
			continue
		}
		drop := map[int]bool{}
		for j := 0; j < p.NumVars(); j++ {
			if rng.Intn(5) == 0 {
				drop[j] = true
			}
		}
		q, varMap := shrinkProblem(p, drop)
		conMap := make([]int, p.NumCons())
		for i := range conMap {
			conMap[i] = i
		}
		tb := TranslateBasis(base.Basis, varMap, conMap, q.NumVars(), q.NumCons())
		if tb == nil {
			continue // unrepairable collision: cold start is the designed fallback
		}
		cold, err := q.Solve(Options{})
		if err != nil {
			t.Fatalf("seed %d: cold: %v", seed, err)
		}
		warm, err := q.Solve(Options{WarmStart: tb, Dual: true, Presolve: PresolveOff})
		if err != nil {
			t.Fatalf("seed %d: warm: %v", seed, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("seed %d: warm status %v, cold %v", seed, warm.Status, cold.Status)
		}
		if cold.Status != Optimal {
			continue
		}
		if d := relDiff(warm.Objective, cold.Objective); d > 1e-6 {
			t.Errorf("seed %d: warm objective %g, cold %g (rel %g)", seed, warm.Objective, cold.Objective, d)
		}
	}
}

// TestTranslateBasisRowRemoval removes constraint rows and checks the
// translated basis still warm-solves to the cold optimum.
func TestTranslateBasisRowRemoval(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x40))
		p := lipsShapedLP(4+rng.Intn(6), 3+rng.Intn(5), 2+rng.Intn(4),
			rand.New(rand.NewSource(seed+900)), rng)
		base, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if base.Status != Optimal || base.Basis == nil {
			continue
		}
		// Drop a few LE rows (capacity rows are safe to relax away).
		dropRow := map[int]bool{}
		for i := 0; i < p.NumCons(); i++ {
			if p.ConSense(Con(i)) == LE && rng.Intn(4) == 0 {
				dropRow[i] = true
			}
		}
		q := New("row-shrunk")
		conMap := make([]int, p.NumCons())
		for i := 0; i < p.NumCons(); i++ {
			if dropRow[i] {
				conMap[i] = -1
				continue
			}
			conMap[i] = int(q.AddCon(p.ConName(Con(i)), p.ConSense(Con(i)), p.ConRHS(Con(i))))
		}
		varMap := make([]int, p.NumVars())
		for j := 0; j < p.NumVars(); j++ {
			lo, hi := p.Bounds(Var(j))
			v := q.AddVar(p.VarName(Var(j)), lo, hi, p.Cost(Var(j)))
			varMap[j] = int(v)
			for i := 0; i < p.NumCons(); i++ {
				if conMap[i] < 0 {
					continue
				}
				if c := p.Coef(Con(i), Var(j)); c != 0 {
					q.SetCoef(Con(conMap[i]), v, c)
				}
			}
		}
		tb := TranslateBasis(base.Basis, varMap, conMap, q.NumVars(), q.NumCons())
		if tb == nil {
			continue
		}
		cold, err := q.Solve(Options{})
		if err != nil {
			t.Fatalf("seed %d: cold: %v", seed, err)
		}
		warm, err := q.Solve(Options{WarmStart: tb, Dual: true, Presolve: PresolveOff})
		if err != nil {
			t.Fatalf("seed %d: warm: %v", seed, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("seed %d: warm status %v, cold %v", seed, warm.Status, cold.Status)
		}
		if cold.Status == Optimal {
			if d := relDiff(warm.Objective, cold.Objective); d > 1e-6 {
				t.Errorf("seed %d: warm objective %g, cold %g (rel %g)", seed, warm.Objective, cold.Objective, d)
			}
		}
	}
}

// TestExtendBasisAppend appends columns to a solved problem and warm
// starts from the extended basis: the appended columns must rest at their
// default bounds and the re-solve must match a cold solve.
func TestExtendBasisAppend(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x80))
		p := lipsShapedLP(4+rng.Intn(6), 3+rng.Intn(5), 2+rng.Intn(4),
			rand.New(rand.NewSource(seed+1300)), rng)
		base, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if base.Status != Optimal || base.Basis == nil {
			continue
		}
		// Append a handful of cheap columns into random rows — some will
		// price into the basis, exercising a real re-optimization.
		for k := 0; k < 3; k++ {
			v := p.AddVar("extra", 0, 1+rng.Float64(), rng.Float64()*0.5)
			for tries := 0; tries < 2; tries++ {
				p.SetCoef(Con(rng.Intn(p.NumCons())), v, 0.5+rng.Float64())
			}
		}
		eb := p.ExtendBasis(base.Basis)
		if eb == nil {
			t.Fatalf("seed %d: ExtendBasis returned nil", seed)
		}
		cold, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("seed %d: cold: %v", seed, err)
		}
		warm, err := p.Solve(Options{WarmStart: eb, Presolve: PresolveOff})
		if err != nil {
			t.Fatalf("seed %d: warm: %v", seed, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("seed %d: warm status %v, cold %v", seed, warm.Status, cold.Status)
		}
		if cold.Status != Optimal {
			continue
		}
		if !warm.WarmStarted {
			t.Errorf("seed %d: extended basis rejected", seed)
		}
		if d := relDiff(warm.Objective, cold.Objective); d > 1e-6 {
			t.Errorf("seed %d: warm objective %g, cold %g (rel %g)", seed, warm.Objective, cold.Objective, d)
		}
	}
}

// TestTranslateBasisRejectsGarbage pins the nil returns for inconsistent
// inputs.
func TestTranslateBasisRejectsGarbage(t *testing.T) {
	if TranslateBasis(nil, nil, nil, 0, 0) != nil {
		t.Error("nil basis should translate to nil")
	}
	b := &Basis{NumVars: 2, NumCons: 1, RowCol: []int32{0}, ColStat: []int8{0, 0, 0}}
	if TranslateBasis(b, []int{0}, []int{0}, 2, 1) != nil {
		t.Error("short varMap should be rejected")
	}
	if TranslateBasis(b, []int{0, 1}, []int{0, 1}, 2, 1) != nil {
		t.Error("long conMap should be rejected")
	}
}
