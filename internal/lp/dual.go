package lp

import (
	"math"
	"time"
)

// iterateDual runs bounded-variable dual-simplex pivots until the basic
// values are primal feasible again. It is the repair path for a warm-start
// basis invalidated only by right-hand-side or bound drift: such a basis
// stays dual feasible (reduced costs depend on costs and the basis, not on
// b), so each pivot can drive the most violated basic variable to its
// nearest bound while a dual ratio test picks the entering column that
// keeps every reduced cost on the right side of zero.
//
// repaired reports success: the state is primal feasible and the caller
// finishes with the ordinary primal iterate (normally zero or a handful of
// polishing pivots). When repaired is false the state is abandoned: st is
// IterLimit if the shared iteration budget ran out, and Infeasible for
// everything else — no eligible entering column, unsafe pivots on a fresh
// factorization, a degenerate stall, or a singular refactorization. The
// caller treats the latter as "fall back to the cold two-phase start"
// rather than declaring the problem infeasible, so a confused dual run can
// never produce a wrong answer, only a slower one.
func (s *simplexState) iterateDual(cost []float64) (repaired bool, st Status) {
	m := s.m
	tol := s.opts.Tol
	ftol := math.Max(1e-7, 100*tol)
	sinceRefactor := 0
	degen := 0
	for {
		if s.iter >= s.opts.MaxIters {
			return false, IterLimit
		}
		if degen > 2*m+200 {
			return false, Infeasible // stalled: let the cold path take over
		}
		if sinceRefactor > 0 && s.factor.needsRefactor(sinceRefactor) {
			if err := s.refactorize(); err != nil {
				return false, Infeasible
			}
			sinceRefactor = 0
		}

		// Leaving row: the basic variable with the worst relative bound
		// violation. None within tolerance means the repair is done.
		r := -1
		worst := 0.0
		var target float64 // bound the leaving variable settles at
		var above bool     // true: basic value exceeds its upper bound
		for i := 0; i < m; i++ {
			bj := s.basis[i]
			scale := ftol * (1 + math.Abs(s.xB[i]))
			if v := s.xB[i] - s.upper[bj]; v > scale {
				if rel := v / (1 + math.Abs(s.upper[bj])); rel > worst {
					worst, r, target, above = rel, i, s.upper[bj], true
				}
			} else if v := s.lower[bj] - s.xB[i]; v > scale {
				if rel := v / (1 + math.Abs(s.lower[bj])); rel > worst {
					worst, r, target, above = rel, i, s.lower[bj], false
				}
			}
		}
		if r == -1 {
			return true, Optimal
		}

		s.computeDuals(cost)
		t0 := time.Now()
		prow := s.factor.pivotRow(r) // row r of B^{-1}
		s.btranNS += time.Since(t0)

		// Dual ratio test: among nonbasic columns whose movement direction
		// reduces the violation (α sign vs rest position), pick the one
		// with the smallest |d|/|α| so every other reduced cost stays dual
		// feasible after the pivot; ties prefer the larger |α| for
		// stability, then the lower index for determinism.
		t0 = time.Now()
		e := -1
		bestRatio := math.Inf(1)
		bestAlpha := 0.0
		for j := range s.cols {
			stj := s.status[j]
			if stj == basic {
				continue
			}
			if s.lower[j] == s.upper[j] && stj != atFree {
				continue // fixed column cannot move
			}
			alpha := 0.0
			for _, z := range s.cols[j] {
				alpha += prow[z.row] * z.coef
			}
			if math.Abs(alpha) <= 1e-9 {
				continue
			}
			// The entering variable moves by t (t ≥ 0 from a lower bound,
			// t ≤ 0 from an upper bound) and xB[r] changes by −α·t, which
			// must shrink the violation.
			eligible := false
			switch stj {
			case atLower:
				eligible = (above && alpha > 0) || (!above && alpha < 0)
			case atUpper:
				eligible = (above && alpha < 0) || (!above && alpha > 0)
			case atFree:
				eligible = true
			}
			if !eligible {
				continue
			}
			d := cost[j]
			for _, z := range s.cols[j] {
				d -= s.y[z.row] * z.coef
			}
			ratio := math.Abs(d) / math.Abs(alpha)
			switch {
			case ratio < bestRatio-1e-12:
				e, bestRatio, bestAlpha = j, ratio, alpha
			case ratio <= bestRatio+1e-12 && e >= 0 && math.Abs(alpha) > math.Abs(bestAlpha):
				e, bestRatio, bestAlpha = j, ratio, alpha
			}
		}
		s.pricingNS += time.Since(t0)
		if e == -1 {
			return false, Infeasible
		}

		t0 = time.Now()
		s.factor.ftranCol(s.cols[e], s.w)
		s.ftranNS += time.Since(t0)
		piv := s.w[r]
		if math.Abs(piv) < 1e-11 {
			if sinceRefactor > 0 {
				if err := s.refactorize(); err != nil {
					return false, Infeasible
				}
				sinceRefactor = 0
				continue
			}
			return false, Infeasible
		}

		tmove := (s.xB[r] - target) / piv
		if math.Abs(tmove) <= tol {
			degen++
		} else {
			degen = 0
		}
		s.iter++
		s.dualIt++

		for i := 0; i < m; i++ {
			if i == r {
				continue
			}
			s.xB[i] -= s.w[i] * tmove
		}
		out := s.basis[r]
		if above {
			s.status[out], s.value[out] = atUpper, s.upper[out]
		} else {
			s.status[out], s.value[out] = atLower, s.lower[out]
		}
		enterVal := s.value[e] + tmove
		if s.status[e] == atFree {
			enterVal = tmove
		}
		s.basis[r] = e
		s.status[e] = basic
		s.xB[r] = enterVal
		if s.opts.RecordPivots {
			s.pivots = append(s.pivots, Pivot{Entering: int32(e), Leaving: int32(out)})
		}

		t0 = time.Now()
		s.factor.update(s.w, r)
		s.factorNS += time.Since(t0)
		sinceRefactor++
	}
}
