package lp

import (
	"bytes"
	"math/rand"
	"testing"
)

// schedulingShapedLP builds an LP with the LiPS online-model silhouette:
// jobs × machines × stores assignment variables with coverage, capacity
// and linking rows — the workload this solver exists for.
func schedulingShapedLP(jobs, machines, stores int, rng *rand.Rand) *Problem {
	p := New("sched-shaped")
	cpuRows := make([]Con, machines)
	for l := 0; l < machines; l++ {
		cpuRows[l] = p.AddCon("cpu", LE, 500+rng.Float64()*2000)
	}
	for k := 0; k < jobs; k++ {
		demand := 50 + rng.Float64()*400
		cover := p.AddCon("job", GE, 1)
		for l := 0; l < machines; l++ {
			price := 1 + rng.Float64()*5
			for m := 0; m < stores; m++ {
				transfer := rng.Float64() * 60
				v := p.AddVar("xt", 0, 1, demand*price+transfer)
				p.SetCoef(cover, v, 1)
				p.SetCoef(cpuRows[l], v, demand)
			}
		}
	}
	return p
}

func benchmarkSolve(b *testing.B, jobs, machines, stores int) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	p := schedulingShapedLP(jobs, machines, stores, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := p.Solve(Options{})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

func BenchmarkSolveSmall(b *testing.B)  { benchmarkSolve(b, 5, 6, 6) }
func BenchmarkSolveMedium(b *testing.B) { benchmarkSolve(b, 15, 9, 9) }
func BenchmarkSolveLarge(b *testing.B)  { benchmarkSolve(b, 40, 12, 12) }

func BenchmarkSolveDenseReference(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p := schedulingShapedLP(4, 4, 4, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveDense(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p := schedulingShapedLP(10, 6, 6, rng)
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		b.Fatal(err)
	}
	text := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(bytes.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}
