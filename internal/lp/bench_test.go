package lp

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"
)

// schedulingShapedLP builds an LP with the LiPS online-model silhouette:
// jobs × machines × stores assignment variables with coverage, capacity
// and linking rows — the workload this solver exists for.
func schedulingShapedLP(jobs, machines, stores int, rng *rand.Rand) *Problem {
	p := New("sched-shaped")
	cpuRows := make([]Con, machines)
	for l := 0; l < machines; l++ {
		cpuRows[l] = p.AddCon("cpu", LE, 500+rng.Float64()*2000)
	}
	for k := 0; k < jobs; k++ {
		demand := 50 + rng.Float64()*400
		cover := p.AddCon("job", GE, 1)
		for l := 0; l < machines; l++ {
			price := 1 + rng.Float64()*5
			for m := 0; m < stores; m++ {
				transfer := rng.Float64() * 60
				v := p.AddVar("xt", 0, 1, demand*price+transfer)
				p.SetCoef(cover, v, 1)
				p.SetCoef(cpuRows[l], v, demand)
			}
		}
	}
	return p
}

func benchmarkSolve(b *testing.B, jobs, machines, stores int) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	p := schedulingShapedLP(jobs, machines, stores, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := p.Solve(Options{})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

func BenchmarkSolveSmall(b *testing.B)  { benchmarkSolve(b, 5, 6, 6) }
func BenchmarkSolveMedium(b *testing.B) { benchmarkSolve(b, 15, 9, 9) }
func BenchmarkSolveLarge(b *testing.B)  { benchmarkSolve(b, 40, 12, 12) }

func BenchmarkSolveDenseReference(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p := schedulingShapedLP(4, 4, 4, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveDense(0); err != nil {
			b.Fatal(err)
		}
	}
}

// epochScaleLP builds the online-model silhouette at the paper's
// 100-node / 1000-task scale: 30 queued jobs × 13 machine units (12 real
// + fake) × 12 store units ≈ 5000 columns over ≈ 800 rows. With prng set
// the capacities, horizons and costs drift by a few percent — the shape
// of two consecutive scheduling epochs.
func epochScaleLP(prng *rand.Rand) *Problem {
	return lipsShapedLP(30, 13, 12, rand.New(rand.NewSource(77)), prng)
}

// BenchmarkEpoch measures one epoch's LP solve the way sched.LiPS runs
// it: cold from scratch (the seed's behaviour), and warm-started from the
// previous epoch's optimal basis with parallel pricing (the fast path).
func BenchmarkEpoch(b *testing.B) {
	base := epochScaleLP(nil)
	prev := epochScaleLP(rand.New(rand.NewSource(78)))
	psol, err := prev.Solve(Options{})
	if err != nil {
		b.Fatal(err)
	}
	if psol.Status != Optimal || psol.Basis == nil {
		b.Fatalf("previous epoch: status %v, basis %v", psol.Status, psol.Basis != nil)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sol, err := base.Solve(Options{})
			if err != nil {
				b.Fatal(err)
			}
			if sol.Status != Optimal {
				b.Fatalf("status %v", sol.Status)
			}
			b.ReportMetric(float64(sol.Iters), "iters")
		}
	})
	b.Run("warm", func(b *testing.B) {
		opts := Options{WarmStart: psol.Basis, PricingWorkers: runtime.GOMAXPROCS(0)}
		for i := 0; i < b.N; i++ {
			sol, err := base.Solve(opts)
			if err != nil {
				b.Fatal(err)
			}
			if sol.Status != Optimal {
				b.Fatalf("status %v", sol.Status)
			}
			if !sol.WarmStarted {
				b.Fatal("warm start rejected — benchmark would measure a cold solve")
			}
			b.ReportMetric(float64(sol.Iters), "iters")
		}
	})
}

func BenchmarkParse(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	p := schedulingShapedLP(10, 6, 6, rng)
	var buf bytes.Buffer
	if err := Write(&buf, p); err != nil {
		b.Fatal(err)
	}
	text := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(bytes.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}
