package lp

import (
	"math/rand"
	"testing"
)

// solveRecorded solves p with the given worker count and pivot recording
// on, failing the test on any non-optimal outcome.
func solveRecorded(t *testing.T, p *Problem, workers int, extra Options) *Solution {
	t.Helper()
	opts := extra
	opts.PricingWorkers = workers
	opts.RecordPivots = true
	sol, err := p.Solve(opts)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if sol.Status != Optimal {
		t.Fatalf("workers=%d: status %v", workers, sol.Status)
	}
	return sol
}

// assertSameRun verifies two solves took the exact same path: identical
// pivot sequences, iteration counts, and bitwise-identical solutions.
func assertSameRun(t *testing.T, ref, got *Solution, label string) {
	t.Helper()
	if ref.Iters != got.Iters {
		t.Fatalf("%s: %d iterations vs %d", label, got.Iters, ref.Iters)
	}
	if len(ref.Pivots) != len(got.Pivots) {
		t.Fatalf("%s: %d pivots vs %d", label, len(got.Pivots), len(ref.Pivots))
	}
	for i := range ref.Pivots {
		if ref.Pivots[i] != got.Pivots[i] {
			t.Fatalf("%s: pivot %d diverged: %+v vs %+v", label, i, got.Pivots[i], ref.Pivots[i])
		}
	}
	for j := range ref.X {
		if ref.X[j] != got.X[j] {
			t.Fatalf("%s: X[%d] = %x vs %x (not bitwise identical)", label, j, got.X[j], ref.X[j])
		}
	}
	if ref.Objective != got.Objective {
		t.Fatalf("%s: objective %x vs %x", label, got.Objective, ref.Objective)
	}
}

// TestParallelPricingDeterminism solves the same epoch-scale LP with 1, 4
// and 8 pricing workers and asserts the pivot sequence and solution are
// identical — parallel pricing must be a pure speed knob, invisible to
// the algorithm. The problem is sized above parallelMinCols so the worker
// pool actually engages.
func TestParallelPricingDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := schedulingShapedLP(25, 4, 4, rng) // 400 columns > parallelMinCols
	if p.NumVars() < parallelMinCols {
		t.Fatalf("problem too small to engage the pool: %d cols", p.NumVars())
	}
	ref := solveRecorded(t, p, 1, Options{})
	if len(ref.Pivots) == 0 {
		t.Fatal("no pivots recorded")
	}
	for _, workers := range []int{4, 8} {
		got := solveRecorded(t, p, workers, Options{})
		assertSameRun(t, ref, got, "workers=4/8")
	}
}

// TestParallelPricingDeterminismBland repeats the determinism check under
// Bland's rule, whose first-eligible-index selection exercises the
// ascending-chunk merge path of the parallel pricer.
func TestParallelPricingDeterminismBland(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := schedulingShapedLP(20, 4, 4, rng)
	ref := solveRecorded(t, p, 1, Options{Bland: true})
	for _, workers := range []int{4, 8} {
		got := solveRecorded(t, p, workers, Options{Bland: true})
		assertSameRun(t, ref, got, "bland")
	}
}

// TestParallelPricingDeterminismWarm checks that a warm-started solve is
// deterministic across worker counts too — the path the LiPS scheduler
// runs every epoch after the first.
func TestParallelPricingDeterminismWarm(t *testing.T) {
	base := lipsShapedLP(16, 4, 4, rand.New(rand.NewSource(31)), nil)
	perturbed := lipsShapedLP(16, 4, 4, rand.New(rand.NewSource(31)), rand.New(rand.NewSource(32)))
	psol, err := perturbed.Solve(Options{})
	if err != nil || psol.Status != Optimal {
		t.Fatalf("perturbed: %v / %v", err, psol.Status)
	}
	ref := solveRecorded(t, base, 1, Options{WarmStart: psol.Basis})
	for _, workers := range []int{4, 8} {
		got := solveRecorded(t, base, workers, Options{WarmStart: psol.Basis})
		if ref.WarmStarted != got.WarmStarted {
			t.Fatalf("warm acceptance diverged: %v vs %v", got.WarmStarted, ref.WarmStarted)
		}
		assertSameRun(t, ref, got, "warm")
	}
}
