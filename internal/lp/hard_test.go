package lp

import (
	"math"
	"testing"
)

// kleeMintyLP builds the classic Klee–Minty cube (minimization form).
// The optimum is x_n = 5^n, all others 0, with objective −5^n.
func kleeMintyLP(n int) *Problem {
	p := New("klee-minty")
	xs := make([]Var, n)
	for j := 0; j < n; j++ {
		// Minimize the negation of the classic objective.
		cost := -math.Pow(2, float64(n-j-1))
		xs[j] = p.AddVar("x", 0, Inf, cost)
	}
	for i := 0; i < n; i++ {
		row := p.AddCon("km", LE, math.Pow(5, float64(i+1)))
		for j := 0; j < i; j++ {
			p.SetCoef(row, xs[j], math.Pow(2, float64(i-j+1)))
		}
		p.SetCoef(row, xs[i], 1)
	}
	return p
}

// wideRangeLP mixes tiny and huge costs — the fake-node regime that
// motivated the relative dual-feasibility tolerance. Optimum 30·1e-3 +
// 50·1 + 20·1e7.
func wideRangeLP() *Problem {
	p := New("wide")
	cheap := p.AddVar("cheap", 0, Inf, 1e-3)
	mid := p.AddVar("mid", 0, Inf, 1.0)
	huge := p.AddVar("huge", 0, Inf, 1e7)
	c := p.AddCon("demand", GE, 100)
	p.SetCoef(c, cheap, 1)
	p.SetCoef(c, mid, 1)
	p.SetCoef(c, huge, 1)
	cap := p.AddCon("cap-cheap", LE, 30)
	p.SetCoef(cap, cheap, 1)
	cap2 := p.AddCon("cap-mid", LE, 50)
	p.SetCoef(cap2, mid, 1)
	return p
}

// degenTransportLP builds a perfectly symmetric n×n assignment — every
// basic solution is massively degenerate. Optimum n·0.5 (the diagonal).
func degenTransportLP(n int) *Problem {
	p := New("degen-transport")
	rows := make([]Con, n)
	cols := make([]Con, n)
	for i := 0; i < n; i++ {
		rows[i] = p.AddCon("supply", EQ, 1)
		cols[i] = p.AddCon("demand", EQ, 1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cost := 1.0 // all ties
			if i == j {
				cost = 0.5 // diagonal slightly cheaper
			}
			v := p.AddVar("x", 0, 1, cost)
			p.SetCoef(rows[i], v, 1)
			p.SetCoef(cols[j], v, 1)
		}
	}
	return p
}

// redundantEqLP stresses phase 1 with linearly dependent equality rows.
// Optimum 6 (all mass on x).
func redundantEqLP() *Problem {
	p := New("redundant-eq")
	x := p.AddVar("x", 0, Inf, 1)
	y := p.AddVar("y", 0, Inf, 2)
	for i := 0; i < 12; i++ {
		c := p.AddCon("dup", EQ, 6)
		p.SetCoef(c, x, 1)
		p.SetCoef(c, y, 1)
	}
	return p
}

// hardCorpus enumerates the hard problems with their known optima, shared
// by the direct tests below and the colgen/dual differential suites.
func hardCorpus() []struct {
	name string
	p    func() *Problem
	want float64
} {
	return []struct {
		name string
		p    func() *Problem
		want float64
	}{
		{"klee-minty-4", func() *Problem { return kleeMintyLP(4) }, -math.Pow(5, 4)},
		{"klee-minty-8", func() *Problem { return kleeMintyLP(8) }, -math.Pow(5, 8)},
		{"klee-minty-12", func() *Problem { return kleeMintyLP(12) }, -math.Pow(5, 12)},
		{"wide-range", wideRangeLP, 30*1e-3 + 50*1.0 + 20*1e7},
		{"degen-transport-8", func() *Problem { return degenTransportLP(8) }, 8 * 0.5},
		{"redundant-eq", redundantEqLP, 6},
	}
}

// TestKleeMinty solves the classic Klee–Minty cube, the worst case for
// textbook Dantzig pricing: max Σ 2^(n-j) x_j with nested constraints.
// The optimum is x_n = 5^n, all others 0. We only require optimality in a
// sane iteration budget, not a short path.
func TestKleeMinty(t *testing.T) {
	for _, n := range []int{4, 8, 12} {
		p := kleeMintyLP(n)
		sol, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("n=%d: status %v after %d iters", n, sol.Status, sol.Iters)
		}
		want := -math.Pow(5, float64(n))
		if math.Abs(sol.Objective-want) > 1e-6*math.Abs(want) {
			t.Errorf("n=%d: objective %g, want %g", n, sol.Objective, want)
		}
		if err := p.CheckFeasible(sol.X, 1e-6); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

// TestWideCoefficientRange mixes tiny and huge costs/coefficients — the
// regime that motivated the relative dual-feasibility tolerance.
func TestWideCoefficientRange(t *testing.T) {
	p := wideRangeLP()
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	want := 30*1e-3 + 50*1.0 + 20*1e7
	if math.Abs(sol.Objective-want) > 1e-6*want {
		t.Errorf("objective %g, want %g", sol.Objective, want)
	}
}

// TestDegenerateTransportation builds a perfectly symmetric assignment —
// every basic solution is massively degenerate — and checks termination
// at the known optimum.
func TestDegenerateTransportation(t *testing.T) {
	const n = 8
	p := degenTransportLP(n)
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v after %d iters", sol.Status, sol.Iters)
	}
	if math.Abs(sol.Objective-float64(n)*0.5) > 1e-6 {
		t.Errorf("objective %g, want %g (identity assignment)", sol.Objective, float64(n)*0.5)
	}
	if sol.Iters > 2000 {
		t.Errorf("%d iterations on an 8×8 assignment suggests stalling", sol.Iters)
	}
}

// TestManyRedundantEqualities stresses phase 1 with linearly dependent
// equality rows.
func TestManyRedundantEqualities(t *testing.T) {
	p := redundantEqLP()
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantOptimal(t, p, sol, 6) // all mass on x
}
