package lp

import (
	"math"
	"math/rand"
	"testing"
)

// lipsShapedLP builds a randomized LP with the online model's silhouette:
// per-job placement flows (EQ rows), store capacities (LE), job coverage
// (GE), machine CPU capacities (LE), data-existence linking rows (LE 0)
// and per-(job,machine) transfer-time rows (LE), with every column
// carrying at most 4 nonzeros and a finite upper bound.
//
// All base data is drawn from rng; when prng is non-nil, capacities,
// horizons and costs are additionally perturbed by a few percent. Calling
// with the same rng seed and prng == nil therefore reproduces the exact
// base problem — the pair (base, perturbed) models two consecutive epochs
// of the same LP.
func lipsShapedLP(jobs, machines, stores int, rng, prng *rand.Rand) *Problem {
	nudge := func(v float64) float64 {
		if prng == nil {
			return v
		}
		return v * (1 + 0.08*(prng.Float64()-0.5))
	}
	p := New("lips-shaped")

	totalSize := 0.0
	sizes := make([]float64, jobs)
	for k := range sizes {
		sizes[k] = 1 + rng.Float64()*3
		totalSize += sizes[k]
	}
	capRows := make([]Con, stores)
	for m := range capRows {
		capRows[m] = p.AddCon("cap", LE, nudge(totalSize*(0.6+rng.Float64())))
	}
	cpuRows := make([]Con, machines)
	for l := range cpuRows {
		cpuRows[l] = p.AddCon("cpu", LE, nudge(400+rng.Float64()*1600))
	}

	for k := 0; k < jobs; k++ {
		demand := 20 + rng.Float64()*150

		// Placement flows: exactly one unit of job k's data distributed
		// over the stores (3 nonzeros per flow column).
		place := p.AddCon("place", EQ, 1)
		existRows := make([]Con, stores)
		for m := 0; m < stores; m++ {
			existRows[m] = p.AddCon("exist", LE, 0)
		}
		for m := 0; m < stores; m++ {
			f := p.AddVar("xd", 0, 1, nudge(rng.Float64()*2*sizes[k]))
			p.SetCoef(place, f, 1)
			p.SetCoef(capRows[m], f, sizes[k])
			p.SetCoef(existRows[m], f, -1)
		}

		// Task assignment columns (4 nonzeros each, finite upper bound).
		cover := p.AddCon("job", GE, 1)
		for l := 0; l < machines; l++ {
			xfer := p.AddCon("xfer", LE, nudge(300+rng.Float64()*300))
			for m := 0; m < stores; m++ {
				ub := 0.4 + rng.Float64()*0.6
				price := 1 + rng.Float64()*5
				v := p.AddVar("xt", 0, ub, nudge(demand*price+rng.Float64()*40))
				p.SetCoef(cover, v, 1)
				p.SetCoef(cpuRows[l], v, demand)
				p.SetCoef(existRows[m], v, 1)
				p.SetCoef(xfer, v, nudge(20+rng.Float64()*100))
			}
		}
	}
	return p
}

// relDiff is the relative objective disagreement between two solves.
func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Min(math.Abs(a), math.Abs(b)))
}

// TestDifferentialColdWarmDense cross-checks three solve paths on
// randomized LiPS-shaped LPs: the revised simplex from a cold start, the
// same solver warm-started from the optimal basis of a perturbed copy of
// the problem (the epoch-to-epoch scenario), and the dense tableau
// reference implementation. All three must agree on the objective to
// 1e-6 and return primal-feasible points.
func TestDifferentialColdWarmDense(t *testing.T) {
	const trials = 30
	warmAccepted := 0
	for trial := 0; trial < trials; trial++ {
		seed := int64(1000 + trial)
		shape := rand.New(rand.NewSource(seed))
		jobs := 2 + shape.Intn(6)
		machines := 2 + shape.Intn(4)
		stores := 2 + shape.Intn(4)

		base := lipsShapedLP(jobs, machines, stores, rand.New(rand.NewSource(seed)), nil)
		perturbed := lipsShapedLP(jobs, machines, stores, rand.New(rand.NewSource(seed)),
			rand.New(rand.NewSource(seed+7)))

		// The perturbed copy plays the previous epoch: its optimum basis
		// seeds the warm solve of the base problem.
		psol, err := perturbed.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: perturbed solve: %v", trial, err)
		}

		cold, err := base.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: cold solve: %v", trial, err)
		}
		dense, err := base.SolveDense(0)
		if err != nil {
			t.Fatalf("trial %d: dense solve: %v", trial, err)
		}
		if cold.Status != dense.Status {
			t.Fatalf("trial %d: cold status %v, dense status %v", trial, cold.Status, dense.Status)
		}
		if cold.Status != Optimal {
			continue // both agree the instance is degenerate in the same way
		}

		warm, err := base.Solve(Options{WarmStart: psol.Basis})
		if err != nil {
			t.Fatalf("trial %d: warm solve: %v", trial, err)
		}
		if warm.Status != Optimal {
			t.Fatalf("trial %d: warm status %v", trial, warm.Status)
		}
		if warm.WarmStarted {
			warmAccepted++
		}

		if d := relDiff(cold.Objective, dense.Objective); d > 1e-6 {
			t.Errorf("trial %d (j=%d m=%d s=%d): cold %.12g vs dense %.12g (rel %.2g)",
				trial, jobs, machines, stores, cold.Objective, dense.Objective, d)
		}
		if d := relDiff(cold.Objective, warm.Objective); d > 1e-6 {
			t.Errorf("trial %d (j=%d m=%d s=%d): cold %.12g vs warm %.12g (rel %.2g, accepted=%v)",
				trial, jobs, machines, stores, cold.Objective, warm.Objective, d, warm.WarmStarted)
		}
		for name, sol := range map[string]*Solution{"cold": cold, "warm": warm, "dense": dense} {
			if err := base.CheckFeasible(sol.X, 1e-6); err != nil {
				t.Errorf("trial %d: %s point infeasible: %v", trial, name, err)
			}
		}
	}
	// The fallback path is legal per-instance, but the suite is only
	// meaningful if the warm path actually runs.
	if warmAccepted == 0 {
		t.Fatalf("no trial accepted a warm start — warm path untested")
	}
	t.Logf("warm start accepted in %d/%d trials", warmAccepted, trials)
}

// TestWarmStartFromOwnOptimum re-solves a problem from its own optimal
// basis: the solve must be accepted, skip phase 1, and terminate in O(1)
// iterations at the same objective.
func TestWarmStartFromOwnOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := lipsShapedLP(6, 4, 4, rng, nil)
	cold, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != Optimal {
		t.Fatalf("status %v", cold.Status)
	}
	if cold.Basis == nil {
		t.Fatal("optimal solve returned no basis")
	}
	warm, err := p.Solve(Options{WarmStart: cold.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatal("own optimal basis rejected")
	}
	if warm.Phase1 != 0 {
		t.Fatalf("warm start ran %d phase-1 iterations", warm.Phase1)
	}
	if warm.Iters > 2 {
		t.Fatalf("re-solve from optimum took %d iterations", warm.Iters)
	}
	if d := relDiff(cold.Objective, warm.Objective); d > 1e-9 {
		t.Fatalf("objective moved: %.12g vs %.12g", cold.Objective, warm.Objective)
	}
}

// junkedLiPSLP builds a LiPS-shaped LP and injects presolvable structure
// around it: empty rows, fixed variables wired into capacity rows, empty
// columns, singleton rows (one tightening an existing column's bound, one
// chaining into an empty-column fix), and a dominated duplicate-column
// pair. The junk is constructed so the optimal solution of the core LP is
// perturbed only by the forced values, keeping the instance feasible.
func junkedLiPSLP(seed int64) *Problem {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	jobs := 2 + rng.Intn(4)
	machines := 2 + rng.Intn(3)
	stores := 2 + rng.Intn(3)
	p := lipsShapedLP(jobs, machines, stores, rand.New(rand.NewSource(seed)), nil)

	// Empty rows: trivially satisfied, presolve drops them.
	p.AddCon("junk-empty-le", LE, 1+rng.Float64())
	p.AddCon("junk-empty-ge", GE, -1-rng.Float64())
	p.AddCon("junk-empty-eq", EQ, 0)

	// Fixed variables attached to capacity rows (small coefficient and
	// value so the substituted right-hand sides stay comfortably positive).
	for t := 0; t < 3; t++ {
		v := p.AddVar("junk-fixed", 0.5, 0.5, rng.Float64()*10-5)
		p.SetCoef(Con(rng.Intn(stores+machines)), v, 0.1+0.4*rng.Float64())
	}

	// Empty columns: each fixed at its cheaper bound.
	p.AddVar("junk-empty-pos", 0, 5, 1+rng.Float64())
	p.AddVar("junk-empty-neg", 0, 5, -1-rng.Float64())
	p.AddVar("junk-empty-zero", 1, 3, 0)

	// Singleton row chaining into an empty-column fix: the row folds into
	// an upper bound, leaving a profitable column with no rows that is
	// then fixed at that bound.
	w := p.AddVar("junk-chain", 0, Inf, -(1 + rng.Float64()))
	cw := p.AddCon("junk-single", LE, 1+rng.Float64())
	p.SetCoef(cw, w, 1+rng.Float64())

	// Singleton row tightening the first xd flow's upper bound; the job's
	// other flows keep the EQ placement row feasible.
	sr := p.AddCon("junk-tighten", LE, 0.5+0.4*rng.Float64())
	p.SetCoef(sr, Var(0), 1)

	// Dominated pair over two shared LE rows: the winner is unbounded
	// above, no more expensive, and at least as light in both rows, so
	// presolve fixes the loser at its lower bound.
	dj := p.AddVar("junk-dom-winner", 0, Inf, 5+rng.Float64())
	dk := p.AddVar("junk-dom-loser", 0, 8, 6+rng.Float64())
	for _, c := range []Con{Con(0), Con(stores)} {
		a := 0.5 + rng.Float64()
		p.SetCoef(c, dj, a)
		p.SetCoef(c, dk, a+0.2)
	}
	return p
}

// TestPresolveDifferential is the presolve→solve→postsolve property test:
// on randomized LiPS-shaped LPs with injected presolvable junk, the
// default solve (presolve + sparse LU) must agree with the dense tableau
// reference on status and objective, return a feasible primal point, have
// actually removed rows and columns, and hand back a postsolved basis
// that warm-starts a re-solve of the full problem in O(1) iterations.
func TestPresolveDifferential(t *testing.T) {
	const trials = 25
	warmTested := 0
	for trial := 0; trial < trials; trial++ {
		seed := int64(4000 + trial)
		p := junkedLiPSLP(seed)

		sol, err := p.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: solve: %v", trial, err)
		}
		dense, err := p.SolveDense(0)
		if err != nil {
			t.Fatalf("trial %d: dense solve: %v", trial, err)
		}
		if sol.Status != dense.Status {
			t.Fatalf("trial %d: presolved status %v, dense status %v",
				trial, sol.Status, dense.Status)
		}
		if sol.Status != Optimal {
			continue
		}
		// 3 empty rows + 2 singleton rows injected; 3 fixed + 3 empty +
		// 1 chained + 1 dominated column.
		if sol.PresolveRows < 5 {
			t.Errorf("trial %d: PresolveRows = %d, want >= 5", trial, sol.PresolveRows)
		}
		if sol.PresolveCols < 7 {
			t.Errorf("trial %d: PresolveCols = %d, want >= 7", trial, sol.PresolveCols)
		}
		if d := relDiff(sol.Objective, dense.Objective); d > 1e-6 {
			t.Errorf("trial %d: presolved %.12g vs dense %.12g (rel %.2g)",
				trial, sol.Objective, dense.Objective, d)
		}
		if err := p.CheckFeasible(sol.X, 1e-6); err != nil {
			t.Errorf("trial %d: presolved point infeasible: %v", trial, err)
		}

		if sol.Basis == nil {
			continue // legal per-instance; the counter below keeps us honest
		}
		warm, err := p.Solve(Options{WarmStart: sol.Basis})
		if err != nil {
			t.Fatalf("trial %d: warm re-solve: %v", trial, err)
		}
		if !warm.WarmStarted {
			t.Errorf("trial %d: postsolved basis rejected by warm start", trial)
			continue
		}
		warmTested++
		if warm.Phase1 != 0 {
			t.Errorf("trial %d: warm re-solve ran %d phase-1 iterations", trial, warm.Phase1)
		}
		if warm.Iters > 2 {
			t.Errorf("trial %d: warm re-solve took %d iterations", trial, warm.Iters)
		}
		if d := relDiff(sol.Objective, warm.Objective); d > 1e-6 {
			t.Errorf("trial %d: warm objective %.12g vs %.12g", trial,
				warm.Objective, sol.Objective)
		}
	}
	if warmTested == 0 {
		t.Fatal("no trial exercised the postsolved-basis warm start")
	}
	t.Logf("postsolved basis warm-started %d/%d trials", warmTested, trials)
}

// TestPresolveDominatedColumn pins the dominated-column rule: the loser of
// a duplicate pair must be removed and the objective must match both the
// dense reference and a presolve-off solve.
func TestPresolveDominatedColumn(t *testing.T) {
	p := New("dom")
	// min 1·j + 2·k  s.t. j + 1.2k >= 3 (as -j - 1.2k <= -3), both >= 0.
	j := p.AddVar("j", 0, Inf, 1)
	k := p.AddVar("k", 0, 5, 2)
	c := p.AddCon("need", GE, 3)
	p.SetCoef(c, j, 1.2)
	p.SetCoef(c, k, 1)
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	off, err := p.Solve(Options{Presolve: PresolveOff})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := p.SolveDense(0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.PresolveCols < 1 {
		t.Errorf("PresolveCols = %d, want >= 1 (dominated column)", sol.PresolveCols)
	}
	for name, other := range map[string]*Solution{"presolve-off": off, "dense": dense} {
		if d := relDiff(sol.Objective, other.Objective); d > 1e-9 {
			t.Errorf("objective %.12g disagrees with %s %.12g", sol.Objective, name, other.Objective)
		}
	}
}

// TestWarmStartShapeMismatch verifies the silent cold fallback when the
// offered basis belongs to a differently-shaped problem.
func TestWarmStartShapeMismatch(t *testing.T) {
	a := lipsShapedLP(4, 3, 3, rand.New(rand.NewSource(21)), nil)
	b := lipsShapedLP(5, 3, 3, rand.New(rand.NewSource(22)), nil)
	asol, err := a.Solve(Options{})
	if err != nil || asol.Status != Optimal {
		t.Fatalf("solve a: %v / %v", err, asol.Status)
	}
	cold, err := b.Solve(Options{})
	if err != nil || cold.Status != Optimal {
		t.Fatalf("solve b: %v / %v", err, cold.Status)
	}
	warm, err := b.Solve(Options{WarmStart: asol.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if warm.WarmStarted {
		t.Fatal("accepted a basis from a differently-shaped problem")
	}
	if warm.Status != Optimal || relDiff(cold.Objective, warm.Objective) > 1e-9 {
		t.Fatalf("fallback diverged: %v %.12g vs %.12g", warm.Status, warm.Objective, cold.Objective)
	}
}
