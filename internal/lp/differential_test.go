package lp

import (
	"math"
	"math/rand"
	"testing"
)

// lipsShapedLP builds a randomized LP with the online model's silhouette:
// per-job placement flows (EQ rows), store capacities (LE), job coverage
// (GE), machine CPU capacities (LE), data-existence linking rows (LE 0)
// and per-(job,machine) transfer-time rows (LE), with every column
// carrying at most 4 nonzeros and a finite upper bound.
//
// All base data is drawn from rng; when prng is non-nil, capacities,
// horizons and costs are additionally perturbed by a few percent. Calling
// with the same rng seed and prng == nil therefore reproduces the exact
// base problem — the pair (base, perturbed) models two consecutive epochs
// of the same LP.
func lipsShapedLP(jobs, machines, stores int, rng, prng *rand.Rand) *Problem {
	nudge := func(v float64) float64 {
		if prng == nil {
			return v
		}
		return v * (1 + 0.08*(prng.Float64()-0.5))
	}
	p := New("lips-shaped")

	totalSize := 0.0
	sizes := make([]float64, jobs)
	for k := range sizes {
		sizes[k] = 1 + rng.Float64()*3
		totalSize += sizes[k]
	}
	capRows := make([]Con, stores)
	for m := range capRows {
		capRows[m] = p.AddCon("cap", LE, nudge(totalSize*(0.6+rng.Float64())))
	}
	cpuRows := make([]Con, machines)
	for l := range cpuRows {
		cpuRows[l] = p.AddCon("cpu", LE, nudge(400+rng.Float64()*1600))
	}

	for k := 0; k < jobs; k++ {
		demand := 20 + rng.Float64()*150

		// Placement flows: exactly one unit of job k's data distributed
		// over the stores (3 nonzeros per flow column).
		place := p.AddCon("place", EQ, 1)
		existRows := make([]Con, stores)
		for m := 0; m < stores; m++ {
			existRows[m] = p.AddCon("exist", LE, 0)
		}
		for m := 0; m < stores; m++ {
			f := p.AddVar("xd", 0, 1, nudge(rng.Float64()*2*sizes[k]))
			p.SetCoef(place, f, 1)
			p.SetCoef(capRows[m], f, sizes[k])
			p.SetCoef(existRows[m], f, -1)
		}

		// Task assignment columns (4 nonzeros each, finite upper bound).
		cover := p.AddCon("job", GE, 1)
		for l := 0; l < machines; l++ {
			xfer := p.AddCon("xfer", LE, nudge(300+rng.Float64()*300))
			for m := 0; m < stores; m++ {
				ub := 0.4 + rng.Float64()*0.6
				price := 1 + rng.Float64()*5
				v := p.AddVar("xt", 0, ub, nudge(demand*price+rng.Float64()*40))
				p.SetCoef(cover, v, 1)
				p.SetCoef(cpuRows[l], v, demand)
				p.SetCoef(existRows[m], v, 1)
				p.SetCoef(xfer, v, nudge(20+rng.Float64()*100))
			}
		}
	}
	return p
}

// relDiff is the relative objective disagreement between two solves.
func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Min(math.Abs(a), math.Abs(b)))
}

// TestDifferentialColdWarmDense cross-checks three solve paths on
// randomized LiPS-shaped LPs: the revised simplex from a cold start, the
// same solver warm-started from the optimal basis of a perturbed copy of
// the problem (the epoch-to-epoch scenario), and the dense tableau
// reference implementation. All three must agree on the objective to
// 1e-6 and return primal-feasible points.
func TestDifferentialColdWarmDense(t *testing.T) {
	const trials = 30
	warmAccepted := 0
	for trial := 0; trial < trials; trial++ {
		seed := int64(1000 + trial)
		shape := rand.New(rand.NewSource(seed))
		jobs := 2 + shape.Intn(6)
		machines := 2 + shape.Intn(4)
		stores := 2 + shape.Intn(4)

		base := lipsShapedLP(jobs, machines, stores, rand.New(rand.NewSource(seed)), nil)
		perturbed := lipsShapedLP(jobs, machines, stores, rand.New(rand.NewSource(seed)),
			rand.New(rand.NewSource(seed+7)))

		// The perturbed copy plays the previous epoch: its optimum basis
		// seeds the warm solve of the base problem.
		psol, err := perturbed.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: perturbed solve: %v", trial, err)
		}

		cold, err := base.Solve(Options{})
		if err != nil {
			t.Fatalf("trial %d: cold solve: %v", trial, err)
		}
		dense, err := base.SolveDense(0)
		if err != nil {
			t.Fatalf("trial %d: dense solve: %v", trial, err)
		}
		if cold.Status != dense.Status {
			t.Fatalf("trial %d: cold status %v, dense status %v", trial, cold.Status, dense.Status)
		}
		if cold.Status != Optimal {
			continue // both agree the instance is degenerate in the same way
		}

		warm, err := base.Solve(Options{WarmStart: psol.Basis})
		if err != nil {
			t.Fatalf("trial %d: warm solve: %v", trial, err)
		}
		if warm.Status != Optimal {
			t.Fatalf("trial %d: warm status %v", trial, warm.Status)
		}
		if warm.WarmStarted {
			warmAccepted++
		}

		if d := relDiff(cold.Objective, dense.Objective); d > 1e-6 {
			t.Errorf("trial %d (j=%d m=%d s=%d): cold %.12g vs dense %.12g (rel %.2g)",
				trial, jobs, machines, stores, cold.Objective, dense.Objective, d)
		}
		if d := relDiff(cold.Objective, warm.Objective); d > 1e-6 {
			t.Errorf("trial %d (j=%d m=%d s=%d): cold %.12g vs warm %.12g (rel %.2g, accepted=%v)",
				trial, jobs, machines, stores, cold.Objective, warm.Objective, d, warm.WarmStarted)
		}
		for name, sol := range map[string]*Solution{"cold": cold, "warm": warm, "dense": dense} {
			if err := base.CheckFeasible(sol.X, 1e-6); err != nil {
				t.Errorf("trial %d: %s point infeasible: %v", trial, name, err)
			}
		}
	}
	// The fallback path is legal per-instance, but the suite is only
	// meaningful if the warm path actually runs.
	if warmAccepted == 0 {
		t.Fatalf("no trial accepted a warm start — warm path untested")
	}
	t.Logf("warm start accepted in %d/%d trials", warmAccepted, trials)
}

// TestWarmStartFromOwnOptimum re-solves a problem from its own optimal
// basis: the solve must be accepted, skip phase 1, and terminate in O(1)
// iterations at the same objective.
func TestWarmStartFromOwnOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := lipsShapedLP(6, 4, 4, rng, nil)
	cold, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != Optimal {
		t.Fatalf("status %v", cold.Status)
	}
	if cold.Basis == nil {
		t.Fatal("optimal solve returned no basis")
	}
	warm, err := p.Solve(Options{WarmStart: cold.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatal("own optimal basis rejected")
	}
	if warm.Phase1 != 0 {
		t.Fatalf("warm start ran %d phase-1 iterations", warm.Phase1)
	}
	if warm.Iters > 2 {
		t.Fatalf("re-solve from optimum took %d iterations", warm.Iters)
	}
	if d := relDiff(cold.Objective, warm.Objective); d > 1e-9 {
		t.Fatalf("objective moved: %.12g vs %.12g", cold.Objective, warm.Objective)
	}
}

// TestWarmStartShapeMismatch verifies the silent cold fallback when the
// offered basis belongs to a differently-shaped problem.
func TestWarmStartShapeMismatch(t *testing.T) {
	a := lipsShapedLP(4, 3, 3, rand.New(rand.NewSource(21)), nil)
	b := lipsShapedLP(5, 3, 3, rand.New(rand.NewSource(22)), nil)
	asol, err := a.Solve(Options{})
	if err != nil || asol.Status != Optimal {
		t.Fatalf("solve a: %v / %v", err, asol.Status)
	}
	cold, err := b.Solve(Options{})
	if err != nil || cold.Status != Optimal {
		t.Fatalf("solve b: %v / %v", err, cold.Status)
	}
	warm, err := b.Solve(Options{WarmStart: asol.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if warm.WarmStarted {
		t.Fatal("accepted a basis from a differently-shaped problem")
	}
	if warm.Status != Optimal || relDiff(cold.Objective, warm.Objective) > 1e-9 {
		t.Fatalf("fallback diverged: %v %.12g vs %.12g", warm.Status, warm.Objective, cold.Objective)
	}
}
