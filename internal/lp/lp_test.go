package lp

import (
	"math"
	"testing"
)

func solveBoth(t *testing.T, p *Problem) (*Solution, *Solution) {
	t.Helper()
	rev, err := p.Solve(Options{})
	if err != nil {
		t.Fatalf("Solve(%s): %v", p.Name(), err)
	}
	den, err := p.SolveDense(0)
	if err != nil {
		t.Fatalf("SolveDense(%s): %v", p.Name(), err)
	}
	return rev, den
}

func wantOptimal(t *testing.T, p *Problem, sol *Solution, obj float64) {
	t.Helper()
	if sol.Status != Optimal {
		t.Fatalf("%s: status = %v, want optimal", p.Name(), sol.Status)
	}
	if math.Abs(sol.Objective-obj) > 1e-6*(1+math.Abs(obj)) {
		t.Errorf("%s: objective = %g, want %g (x = %v)", p.Name(), sol.Objective, obj, sol.X)
	}
	if err := p.CheckFeasible(sol.X, 1e-6); err != nil {
		t.Errorf("%s: %v", p.Name(), err)
	}
}

func TestSimpleMin(t *testing.T) {
	// min -x - 2y  s.t. x + y <= 4, x <= 3, y <= 2, x,y >= 0.
	// Optimum at (2, 2): objective -6.
	p := New("simple")
	x := p.AddVar("x", 0, 3, -1)
	y := p.AddVar("y", 0, 2, -2)
	c := p.AddCon("cap", LE, 4)
	p.SetCoef(c, x, 1)
	p.SetCoef(c, y, 1)
	rev, den := solveBoth(t, p)
	wantOptimal(t, p, rev, -6)
	wantOptimal(t, p, den, -6)
	if math.Abs(rev.Value(x)-2) > 1e-7 || math.Abs(rev.Value(y)-2) > 1e-7 {
		t.Errorf("x, y = %g, %g; want 2, 2", rev.Value(x), rev.Value(y))
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min 2a + 3b  s.t. a + b = 10, a >= 2, b >= 3  (as bounds).
	// Optimum a=7, b=3: 14+9 = 23.
	p := New("eq")
	a := p.AddVar("a", 2, Inf, 2)
	b := p.AddVar("b", 3, Inf, 3)
	c := p.AddCon("sum", EQ, 10)
	p.SetCoef(c, a, 1)
	p.SetCoef(c, b, 1)
	rev, den := solveBoth(t, p)
	wantOptimal(t, p, rev, 23)
	wantOptimal(t, p, den, 23)
}

func TestGERow(t *testing.T) {
	// min x + y  s.t. 2x + y >= 8, x + 3y >= 9, x,y >= 0.
	// Vertices: (0,8)->8, (9,0)->9, intersection (3,2)->5. Optimum 5.
	p := New("ge")
	x := p.AddVar("x", 0, Inf, 1)
	y := p.AddVar("y", 0, Inf, 1)
	c1 := p.AddCon("c1", GE, 8)
	p.SetCoef(c1, x, 2)
	p.SetCoef(c1, y, 1)
	c2 := p.AddCon("c2", GE, 9)
	p.SetCoef(c2, x, 1)
	p.SetCoef(c2, y, 3)
	rev, den := solveBoth(t, p)
	wantOptimal(t, p, rev, 5)
	wantOptimal(t, p, den, 5)
}

func TestInfeasible(t *testing.T) {
	p := New("infeasible")
	x := p.AddVar("x", 0, 1, 1)
	c := p.AddCon("impossible", GE, 5)
	p.SetCoef(c, x, 1)
	rev, den := solveBoth(t, p)
	if rev.Status != Infeasible {
		t.Errorf("revised: status = %v, want infeasible", rev.Status)
	}
	if den.Status != Infeasible {
		t.Errorf("dense: status = %v, want infeasible", den.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := New("unbounded")
	x := p.AddVar("x", 0, Inf, -1)
	y := p.AddVar("y", 0, Inf, 0)
	c := p.AddCon("link", LE, 3) // y - x <= 3 does not bound x.
	p.SetCoef(c, y, 1)
	p.SetCoef(c, x, -1)
	rev, den := solveBoth(t, p)
	if rev.Status != Unbounded {
		t.Errorf("revised: status = %v, want unbounded", rev.Status)
	}
	if den.Status != Unbounded {
		t.Errorf("dense: status = %v, want unbounded", den.Status)
	}
}

func TestBoundFlip(t *testing.T) {
	// min -x s.t. (no binding row), 0 <= x <= 7 with a slack-only row.
	p := New("flip")
	x := p.AddVar("x", 0, 7, -1)
	y := p.AddVar("y", 0, 100, 1)
	c := p.AddCon("loose", LE, 1000)
	p.SetCoef(c, x, 1)
	p.SetCoef(c, y, 1)
	rev, den := solveBoth(t, p)
	wantOptimal(t, p, rev, -7)
	wantOptimal(t, p, den, -7)
}

func TestNegativeLowerBound(t *testing.T) {
	// min x  s.t. x >= -5 (bound), x + y = 0, 0 <= y <= 5.
	// Optimum x = -5, y = 5: objective -5.
	p := New("neglb")
	x := p.AddVar("x", -5, Inf, 1)
	y := p.AddVar("y", 0, 5, 0)
	c := p.AddCon("bal", EQ, 0)
	p.SetCoef(c, x, 1)
	p.SetCoef(c, y, 1)
	rev, den := solveBoth(t, p)
	wantOptimal(t, p, rev, -5)
	wantOptimal(t, p, den, -5)
}

func TestFreeVariable(t *testing.T) {
	// min x + 2y with free x: x + y >= 4, x - y <= 2 → at y=1, x=3 obj 5;
	// try corners: y free to grow costs more; optimum x=3,y=1 → 5.
	p := New("free")
	x := p.AddVar("x", math.Inf(-1), Inf, 1)
	y := p.AddVar("y", 0, Inf, 2)
	c1 := p.AddCon("c1", GE, 4)
	p.SetCoef(c1, x, 1)
	p.SetCoef(c1, y, 1)
	c2 := p.AddCon("c2", LE, 2)
	p.SetCoef(c2, x, 1)
	p.SetCoef(c2, y, -1)
	rev, den := solveBoth(t, p)
	wantOptimal(t, p, rev, 5)
	wantOptimal(t, p, den, 5)
}

func TestDegenerateBeale(t *testing.T) {
	// Beale's classic cycling example. Bland fallback must terminate.
	// min -0.75x4 + 150x5 - 0.02x6 + 6x7
	// s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 <= 0
	//      0.5x4 - 90x5 - 0.02x6 + 3x7 <= 0
	//      x6 <= 1;  optimum -0.05.
	p := New("beale")
	x4 := p.AddVar("x4", 0, Inf, -0.75)
	x5 := p.AddVar("x5", 0, Inf, 150)
	x6 := p.AddVar("x6", 0, Inf, -0.02)
	x7 := p.AddVar("x7", 0, Inf, 6)
	c1 := p.AddCon("c1", LE, 0)
	p.SetCoef(c1, x4, 0.25)
	p.SetCoef(c1, x5, -60)
	p.SetCoef(c1, x6, -0.04)
	p.SetCoef(c1, x7, 9)
	c2 := p.AddCon("c2", LE, 0)
	p.SetCoef(c2, x4, 0.5)
	p.SetCoef(c2, x5, -90)
	p.SetCoef(c2, x6, -0.02)
	p.SetCoef(c2, x7, 3)
	c3 := p.AddCon("c3", LE, 1)
	p.SetCoef(c3, x6, 1)
	rev, den := solveBoth(t, p)
	wantOptimal(t, p, rev, -0.05)
	wantOptimal(t, p, den, -0.05)

	// Also with Bland forced on from the start.
	bl, err := p.Solve(Options{Bland: true})
	if err != nil {
		t.Fatal(err)
	}
	wantOptimal(t, p, bl, -0.05)
}

func TestFixedVariable(t *testing.T) {
	// A variable fixed by equal bounds participates as a constant.
	p := New("fixed")
	x := p.AddVar("x", 3, 3, 10)
	y := p.AddVar("y", 0, Inf, 1)
	c := p.AddCon("c", GE, 5)
	p.SetCoef(c, x, 1)
	p.SetCoef(c, y, 1)
	rev, den := solveBoth(t, p)
	wantOptimal(t, p, rev, 32) // x=3 (cost 30) + y=2 (cost 2)
	wantOptimal(t, p, den, 32)
}

func TestNoConstraints(t *testing.T) {
	p := New("nocons")
	p.AddVar("a", 0, 5, -2)
	p.AddVar("b", 1, 9, 3)
	p.AddVar("c", 0, 2, 0)
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantOptimal(t, p, sol, -10+3)
}

func TestNoConstraintsUnbounded(t *testing.T) {
	p := New("noconsub")
	p.AddVar("a", 0, Inf, -1)
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestAccumulatingCoefficients(t *testing.T) {
	p := New("accum")
	x := p.AddVar("x", 0, Inf, 1)
	c := p.AddCon("c", GE, 6)
	p.SetCoef(c, x, 1)
	p.SetCoef(c, x, 2) // accumulates to 3
	if got := p.Coef(c, x); got != 3 {
		t.Fatalf("Coef = %g, want 3", got)
	}
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantOptimal(t, p, sol, 2) // x = 2
}

func TestRedundantRows(t *testing.T) {
	// Duplicate constraints must not confuse phase 1.
	p := New("redundant")
	x := p.AddVar("x", 0, Inf, 1)
	y := p.AddVar("y", 0, Inf, 1)
	for i := 0; i < 4; i++ {
		c := p.AddCon("dup", GE, 4)
		p.SetCoef(c, x, 1)
		p.SetCoef(c, y, 1)
	}
	rev, den := solveBoth(t, p)
	wantOptimal(t, p, rev, 4)
	wantOptimal(t, p, den, 4)
}

func TestDualsOnOptimal(t *testing.T) {
	// For min c^T x, Ax >= b, x >= 0 the duals satisfy y >= 0 and weak
	// duality y^T b <= c^T x. Check on the GE test problem.
	p := New("duals")
	x := p.AddVar("x", 0, Inf, 1)
	y := p.AddVar("y", 0, Inf, 1)
	c1 := p.AddCon("c1", GE, 8)
	p.SetCoef(c1, x, 2)
	p.SetCoef(c1, y, 1)
	c2 := p.AddCon("c2", GE, 9)
	p.SetCoef(c2, x, 1)
	p.SetCoef(c2, y, 3)
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if len(sol.Dual) != 2 {
		t.Fatalf("len(Dual) = %d", len(sol.Dual))
	}
	dualObj := sol.Dual[0]*8 + sol.Dual[1]*9
	if dualObj > sol.Objective+1e-6 {
		t.Errorf("weak duality violated: y·b = %g > %g", dualObj, sol.Objective)
	}
	// All variables here have lower bound 0 and are basic at optimum, so
	// strong duality holds exactly.
	if math.Abs(dualObj-sol.Objective) > 1e-6 {
		t.Errorf("strong duality: y·b = %g, obj = %g", dualObj, sol.Objective)
	}
}

func TestIterLimit(t *testing.T) {
	p := New("limit")
	x := p.AddVar("x", 0, Inf, 1)
	y := p.AddVar("y", 0, Inf, 1)
	c := p.AddCon("c", GE, 8)
	p.SetCoef(c, x, 2)
	p.SetCoef(c, y, 1)
	sol, err := p.Solve(Options{MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterLimit && sol.Status != Optimal {
		t.Fatalf("status = %v, want iteration limit or optimal", sol.Status)
	}
}

func TestSenseString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("unexpected sense strings")
	}
	if Sense(42).String() != "Sense(42)" {
		t.Error("unexpected fallback sense string")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterLimit.String() != "iteration limit" {
		t.Error("unexpected status strings")
	}
	if Status(42).String() != "Status(42)" {
		t.Error("unexpected fallback status string")
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	p := New("panics")
	v := p.AddVar("ok", 0, 1, 0)
	c := p.AddCon("ok", LE, 1)
	mustPanic("inverted bounds", func() { p.AddVar("bad", 2, 1, 0) })
	mustPanic("NaN cost", func() { p.AddVar("bad", 0, 1, math.NaN()) })
	mustPanic("inf rhs", func() { p.AddCon("bad", LE, Inf) })
	mustPanic("NaN coef", func() { p.SetCoef(c, v, math.NaN()) })
	mustPanic("objective mismatch", func() { p.Objective([]float64{1, 2}) })
}

func TestObjectiveAndActivity(t *testing.T) {
	p := New("eval")
	x := p.AddVar("x", 0, 10, 2)
	y := p.AddVar("y", 0, 10, -1)
	c := p.AddCon("c", LE, 100)
	p.SetCoef(c, x, 3)
	p.SetCoef(c, y, 4)
	xs := []float64{2, 5}
	if got := p.Objective(xs); got != 2*2-5 {
		t.Errorf("Objective = %g", got)
	}
	act := p.Activity(xs)
	if act[0] != 3*2+4*5 {
		t.Errorf("Activity = %v", act)
	}
	_ = x
	_ = y
}
