package lp

import (
	"fmt"
	"math"
	"os"
	"time"
)

// debugSimplex enables iteration tracing via LIPS_LP_DEBUG=1.
var debugSimplex = os.Getenv("LIPS_LP_DEBUG") == "1"

// solve is the uninstrumented core of Solve (obs.go): the two-phase
// bounded-variable revised simplex method. The receiver is not modified
// and may be reused.
//
// The method maintains a sparse LU factorization of the basis (Markowitz
// pivot ordering, product-form eta updates, periodic refactorisation from
// scratch to bound eta growth and numerical drift); Options.Factor can
// select the historical explicit dense inverse instead. Cold solves first
// pass through a presolve layer (see presolve.go) unless Options.Presolve
// disables it. Upper bounds are honoured by the bounded-variable
// pivoting rule — including bound flips — so no extra rows are created for
// them. Infeasibility of the initial slack basis is repaired by per-row
// artificial variables minimised in phase 1.
func (p *Problem) solve(opts Options) (*Solution, error) {
	m := len(p.cons)
	n := len(p.vars)
	opts = opts.withDefaults(m, n)
	if m == 0 {
		return p.solveUnconstrained(opts)
	}
	// Presolve only on cold solves: a warm-start basis addresses the
	// unreduced problem and could not seed the reduced one.
	if opts.Presolve != PresolveOff && opts.WarmStart == nil {
		if sol, err, done := p.solvePresolved(opts); done {
			return sol, err
		}
	}
	s := newSimplexState(p, opts)
	return s.run()
}

// solveUnconstrained handles the degenerate case of no constraint rows:
// every variable independently moves to its cheaper bound.
func (p *Problem) solveUnconstrained(opts Options) (*Solution, error) {
	sol := &Solution{Status: Optimal, X: make([]float64, len(p.vars))}
	for i := range p.vars {
		v := &p.vars[i]
		switch {
		case v.cost > 0:
			if math.IsInf(v.lower, -1) {
				return &Solution{Status: Unbounded}, nil
			}
			sol.X[i] = v.lower
		case v.cost < 0:
			if math.IsInf(v.upper, 1) {
				return &Solution{Status: Unbounded}, nil
			}
			sol.X[i] = v.upper
		default:
			if !math.IsInf(v.lower, -1) {
				sol.X[i] = v.lower
			} else if !math.IsInf(v.upper, 1) {
				sol.X[i] = v.upper
			}
		}
		sol.Objective += v.cost * sol.X[i]
	}
	return sol, nil
}

// Column status in the simplex state.
const (
	atLower = iota
	atUpper
	atFree // nonbasic free variable pinned at zero
	basic
)

// simplexState is the working state of one solve. Columns are laid out as
// [structural | slack | artificial].
type simplexState struct {
	p    *Problem
	opts Options

	m, nStruct, nSlack, nArt int

	cols  [][]nz    // sparse column entries
	lower []float64 // per column
	upper []float64
	cost  []float64 // phase-2 (original) costs; artificials are 0
	b     []float64 // row right-hand sides

	status []int      // per column: atLower/atUpper/atFree/basic
	value  []float64  // current value of each NONBASIC column (bound or 0)
	basis  []int      // column index of the basic variable in each row
	xB     []float64  // value of the basic variable in each row
	factor factorizer // representation of B^{-1} (sparse LU or dense)

	// scratch
	y     []float64 // duals c_B^T B^{-1}
	cb    []float64 // slot-space basic costs handed to BTRAN
	w     []float64 // B^{-1} A_q
	devex []float64 // Devex reference weights, one per column
	iter  int
	p1it  int
	dualIt int // dual-simplex repair pivots (Options.Dual)

	degenRun int // consecutive degenerate pivots (triggers Bland)
	nflips   int // bound flips (debug accounting)

	pool      *chunkPool  // parallel pricing workers (nil = sequential)
	cands     []priceCand // per-worker pricing results, reused
	warm      bool        // warm-start basis accepted
	pivots    []Pivot     // recorded when opts.RecordPivots
	pricingNS time.Duration
	factorNS  time.Duration // wall-clock inside refactorize
	ftranNS   time.Duration // wall-clock in FTRAN (entering columns + x_B)
	btranNS   time.Duration // wall-clock in BTRAN (duals + Devex pivot rows)
	nRefactor int
}

// parallelMinCols gates the worker pool: below this column count the
// per-iteration dispatch overhead outweighs the scan. The sequential and
// parallel scans produce bit-identical results, so the gate affects only
// speed, never the pivot sequence.
const parallelMinCols = 256

func newSimplexState(p *Problem, opts Options) *simplexState {
	m := len(p.cons)
	n := len(p.vars)
	s := &simplexState{p: p, opts: opts, m: m, nStruct: n, nSlack: m}
	total := n + m // artificials appended later
	s.cols = make([][]nz, total, total+m)
	s.lower = make([]float64, total, total+m)
	s.upper = make([]float64, total, total+m)
	s.cost = make([]float64, total, total+m)
	s.b = make([]float64, m)
	for j := 0; j < n; j++ {
		v := &p.vars[j]
		s.cols[j] = v.col
		s.lower[j] = v.lower
		s.upper[j] = v.upper
		s.cost[j] = v.cost
	}
	for i := 0; i < m; i++ {
		c := &p.cons[i]
		s.b[i] = c.rhs
		sj := n + i
		s.cols[sj] = []nz{{row: i, coef: 1}}
		switch c.sense {
		case LE:
			s.lower[sj], s.upper[sj] = 0, Inf
		case GE:
			s.lower[sj], s.upper[sj] = math.Inf(-1), 0
		case EQ:
			s.lower[sj], s.upper[sj] = 0, 0
		}
	}
	return s
}

// nonbasicStart picks the starting bound for a nonbasic column and returns
// its value there.
func (s *simplexState) nonbasicStart(j int) (int, float64) {
	lo, hi := s.lower[j], s.upper[j]
	switch {
	case !math.IsInf(lo, -1):
		return atLower, lo
	case !math.IsInf(hi, 1):
		return atUpper, hi
	default:
		return atFree, 0
	}
}

func (s *simplexState) run() (*Solution, error) {
	m := s.m
	s.status = make([]int, len(s.cols), cap(s.cols))
	s.value = make([]float64, len(s.cols), cap(s.cols))
	s.basis = make([]int, m)
	s.xB = make([]float64, m)
	s.factor = newFactorizer(s)
	s.y = make([]float64, m)
	s.cb = make([]float64, m)
	s.w = make([]float64, m)
	if s.opts.PricingWorkers > 1 && len(s.cols) >= parallelMinCols {
		s.pool = newChunkPool(s.opts.PricingWorkers)
		s.cands = make([]priceCand, s.opts.PricingWorkers)
		defer s.pool.close()
	}

	// Anti-degeneracy perturbation: scheduling LPs are massively
	// degenerate (symmetric machine groups, tied costs), which can stall
	// the simplex in long runs of zero-length pivots. A deterministic,
	// row-dependent relaxation of each right-hand side makes basic
	// solutions distinct; the original b is restored before extracting
	// the final answer, so the reported solution is exact up to the
	// usual tolerances.
	bOrig := append([]float64(nil), s.b...)
	for i := 0; i < m; i++ {
		delta := 1e-8 * (1 + math.Abs(s.b[i])) * (0.5 + float64((i*2654435761)%1024)/1024)
		switch s.p.cons[i].sense {
		case GE:
			s.b[i] -= delta
		default: // LE and EQ relax upward
			s.b[i] += delta
		}
	}

	needDual := false
	if ws := s.opts.WarmStart; ws != nil {
		s.warm, needDual = s.tryWarmStart(ws)
	}
	if needDual {
		// The warm basis is primal infeasible but dual feasible: repair it
		// with dual-simplex pivots instead of discarding it. Any trouble
		// (stall, tiny pivots, claimed infeasibility) falls back to the
		// cold two-phase path, which re-derives everything and is always
		// correct.
		repaired, dst := s.iterateDual(s.cost)
		if !repaired {
			if dst == IterLimit {
				return &Solution{Status: IterLimit, Iters: s.iter, DualIters: s.dualIt,
					WarmStarted: true, PricingTime: s.pricingNS, Pivots: s.pivots,
					FactorTime: s.factorNS, FtranTime: s.ftranNS, BtranTime: s.btranNS,
					Refactorizations: s.nRefactor, FactorNNZ: s.factor.nnz()}, nil
			}
			s.warm = false
		}
	}
	if !s.warm {
		s.coldStart()
		if st, done, err := s.phase1(); done {
			return st, err
		}
	}

	// Phase 2 with the original costs.
	cost := s.cost
	if len(cost) < len(s.cols) {
		cost = append(append([]float64(nil), s.cost...), make([]float64, len(s.cols)-len(s.cost))...)
	}
	st, err := s.iterate(cost)
	if err != nil {
		return nil, err
	}
	sol := &Solution{Status: st, Iters: s.iter, Phase1: s.p1it, DualIters: s.dualIt,
		WarmStarted: s.warm, PricingTime: s.pricingNS, Pivots: s.pivots,
		FactorTime: s.factorNS, FtranTime: s.ftranNS, BtranTime: s.btranNS,
		Refactorizations: s.nRefactor, FactorNNZ: s.factor.nnz()}
	if st != Optimal {
		return sol, nil
	}
	// Undo the anti-degeneracy perturbation: re-derive the basic values
	// from the original right-hand sides under the final (optimal) basis.
	s.b = bOrig
	if err := s.refactorize(); err != nil {
		return nil, err
	}
	sol.X = make([]float64, s.nStruct)
	for j := 0; j < s.nStruct; j++ {
		if s.status[j] == basic {
			continue
		}
		sol.X[j] = s.value[j]
	}
	for i := 0; i < m; i++ {
		if bj := s.basis[i]; bj < s.nStruct {
			sol.X[bj] = s.xB[i]
		}
	}
	// Clamp roundoff back into the box so downstream consumers see
	// in-bounds values.
	for j := 0; j < s.nStruct; j++ {
		sol.X[j] = math.Min(math.Max(sol.X[j], s.lower[j]), s.upper[j])
	}
	sol.Objective = s.p.Objective(sol.X)
	s.computeDuals(cost)
	sol.Dual = append([]float64(nil), s.y...)
	sol.Basis = s.extractBasis()
	sol.FactorTime, sol.FtranTime, sol.BtranTime = s.factorNS, s.ftranNS, s.btranNS
	sol.Refactorizations, sol.FactorNNZ = s.nRefactor, s.factor.nnz()
	return sol, nil
}

// coldStart initializes the slack basis with structurals at their start
// bounds, then repairs any slack-bound violations with per-row artificial
// variables. It overwrites all of status/value/basis and resets the
// factorization, so it also serves as the fallback after a rejected warm
// start.
func (s *simplexState) coldStart() {
	m := s.m
	for j := 0; j < s.nStruct; j++ {
		s.status[j], s.value[j] = s.nonbasicStart(j)
	}
	for i := 0; i < m; i++ {
		s.basis[i] = s.nStruct + i
		s.status[s.nStruct+i] = basic
		s.value[s.nStruct+i] = 0
	}
	s.factor.resetIdentity()
	s.computeXB()
}

// phase1 repairs slack-basis infeasibility with artificials and minimises
// their sum. done reports that run should return (st, err) immediately —
// an iteration limit, infeasibility, or a numeric failure.
func (s *simplexState) phase1() (st *Solution, done bool, err error) {
	m := s.m
	tol := s.opts.Tol
	needPhase1 := false
	for i := 0; i < m; i++ {
		bj := s.basis[i]
		resid := 0.0
		switch {
		case s.xB[i] < s.lower[bj]-tol:
			resid = s.xB[i] - s.lower[bj] // negative
		case s.xB[i] > s.upper[bj]+tol:
			resid = s.xB[i] - s.upper[bj] // positive
		default:
			continue
		}
		needPhase1 = true
		// Pin the slack at the violated bound and let the artificial
		// absorb the residual: a·sign(resid) has value |resid| ≥ 0.
		if resid > 0 {
			s.value[bj] = s.upper[bj]
			s.status[bj] = atUpper
		} else {
			s.value[bj] = s.lower[bj]
			s.status[bj] = atLower
		}
		sign := 1.0
		if resid < 0 {
			sign = -1
		}
		aj := len(s.cols)
		s.cols = append(s.cols, []nz{{row: i, coef: sign}})
		s.lower = append(s.lower, 0)
		s.upper = append(s.upper, Inf)
		s.cost = append(s.cost, 0)
		s.status = append(s.status, basic)
		s.value = append(s.value, 0)
		s.nArt++
		s.basis[i] = aj
		s.xB[i] = math.Abs(resid)
		// The artificial column is ±e_i, so row i of B^{-1} becomes
		// sign·e_i — an exact incremental fix on the fresh identity
		// factorization coldStart just installed.
		s.factor.setUnitRow(i, sign)
	}

	if !needPhase1 {
		return nil, false, nil
	}
	// Phase 1: minimise the sum of artificials.
	p1cost := make([]float64, len(s.cols))
	for j := s.nStruct + s.nSlack; j < len(s.cols); j++ {
		p1cost[j] = 1
	}
	stat, err := s.iterate(p1cost)
	if err != nil {
		return nil, true, err
	}
	s.p1it = s.iter
	if stat == IterLimit {
		return &Solution{Status: IterLimit, Iters: s.iter, Phase1: s.p1it}, true, nil
	}
	infeas := 0.0
	for i := 0; i < m; i++ {
		if s.basis[i] >= s.nStruct+s.nSlack {
			infeas += s.xB[i]
		}
	}
	for j := s.nStruct + s.nSlack; j < len(s.cols); j++ {
		if s.status[j] != basic {
			infeas += s.value[j]
		}
	}
	if infeas > 1e-6 {
		// Attach the phase-1 duals: at this (phase-1 optimal) basis every
		// column's artificial-sum reduced cost is nonnegative, so the duals
		// are a Farkas-style certificate — and a column-generation oracle
		// can price against them to find columns that would shrink the
		// infeasibility (see RevealOracle.Price).
		s.computeDuals(p1cost)
		return &Solution{Status: Infeasible, Iters: s.iter, Phase1: s.p1it,
			Dual: append([]float64(nil), s.y...)}, true, nil
	}
	// Freeze artificials at zero for phase 2.
	for j := s.nStruct + s.nSlack; j < len(s.cols); j++ {
		s.upper[j] = 0
		if s.status[j] != basic {
			s.value[j] = 0
			s.status[j] = atLower
		}
	}
	return nil, false, nil
}

// tryWarmStart seeds the state from a previous solve's basis. ok reports
// whether the basis was accepted: it must match the problem's dimensions,
// name a valid set of distinct columns, factorize, and be primal feasible
// under the current bounds and right-hand sides — except that under
// Options.Dual a primal-infeasible basis that is still dual feasible is
// accepted with needDual set, and the caller repairs it with dual-simplex
// pivots. On rejection the caller falls back to coldStart, which
// overwrites everything touched here.
//
// The basis is reusable across epochs precisely because the LiPS online
// model keeps its column structure between epochs — only bounds and RHS
// drift — so nonbasic rest positions are remapped to the current bounds
// (a column recorded at an upper bound that is now infinite moves to its
// default start position). Columns marked BasisAuto — appended after the
// basis was captured by ExtendBasis or TranslateBasis — start at their
// default bound.
func (s *simplexState) tryWarmStart(ws *Basis) (ok, needDual bool) {
	m := s.m
	nb := s.nStruct + s.nSlack
	if ws.NumVars != s.nStruct || ws.NumCons != m ||
		len(ws.RowCol) != m || len(ws.ColStat) != nb {
		return false, false
	}
	seen := make([]bool, nb)
	for i := 0; i < m; i++ {
		j := int(ws.RowCol[i])
		if j < 0 || j >= nb || seen[j] {
			return false, false
		}
		seen[j] = true
	}
	for j := 0; j < nb; j++ {
		if seen[j] {
			continue // basic: ColStat entries of basic columns are ignored
		}
		st := int(ws.ColStat[j])
		lo, hi := s.lower[j], s.upper[j]
		switch st {
		case atLower:
			if math.IsInf(lo, -1) {
				st, _ = s.nonbasicStart(j)
			}
		case atUpper:
			if math.IsInf(hi, 1) {
				st, _ = s.nonbasicStart(j)
			}
		case atFree:
			if !math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
				st, _ = s.nonbasicStart(j)
			}
		case int(BasisAuto):
			st, _ = s.nonbasicStart(j)
		default:
			return false, false
		}
		switch st {
		case atLower:
			s.status[j], s.value[j] = atLower, lo
		case atUpper:
			s.status[j], s.value[j] = atUpper, hi
		default:
			s.status[j], s.value[j] = atFree, 0
		}
	}
	for i := 0; i < m; i++ {
		j := int(ws.RowCol[i])
		s.basis[i] = j
		s.status[j] = basic
		s.value[j] = 0
	}
	if err := s.refactorize(); err != nil {
		return false, false
	}
	// Primal feasibility of the recomputed basic values. The acceptance
	// tolerance is looser than the pivot tolerance — small epoch-to-epoch
	// RHS drift lands here — because the ratio test tolerates (and
	// repairs) slightly out-of-bounds basic values.
	ftol := math.Max(1e-7, 100*s.opts.Tol)
	for i := 0; i < m; i++ {
		bj := s.basis[i]
		scale := ftol * (1 + math.Abs(s.xB[i]))
		if s.xB[i] < s.lower[bj]-scale || s.xB[i] > s.upper[bj]+scale {
			if s.opts.Dual && s.dualFeasible(s.cost) {
				return true, true
			}
			return false, false
		}
	}
	return true, false
}

// dualFeasible reports whether every nonbasic column's reduced cost under
// the current basis respects its rest position — the entry condition for
// the dual simplex. The tolerance is relative to the column's cost
// magnitude, matching the primal pricing rule, and loosened the same way
// the warm-start feasibility check is: small drift is repairable.
func (s *simplexState) dualFeasible(cost []float64) bool {
	s.computeDuals(cost)
	dtol := math.Max(1e-7, 100*s.opts.Tol)
	for j := range s.cols {
		if s.status[j] == basic {
			continue
		}
		if s.lower[j] == s.upper[j] && s.status[j] != atFree {
			continue // fixed column: any reduced cost is fine
		}
		d := cost[j]
		for _, e := range s.cols[j] {
			d -= s.y[e.row] * e.coef
		}
		rel := dtol * (1 + math.Abs(cost[j]))
		switch s.status[j] {
		case atLower:
			if d < -rel {
				return false
			}
		case atUpper:
			if d > rel {
				return false
			}
		case atFree:
			if math.Abs(d) > rel {
				return false
			}
		}
	}
	return true
}

// extractBasis captures the final basis for Solution.Basis. It returns nil
// when an artificial variable is still basic (a degenerate phase-1
// leftover), since such a basis is not expressible over the structural and
// slack columns alone.
func (s *simplexState) extractBasis() *Basis {
	nb := s.nStruct + s.nSlack
	b := &Basis{
		NumVars: s.nStruct, NumCons: s.m,
		RowCol:  make([]int32, s.m),
		ColStat: make([]int8, nb),
	}
	for i := 0; i < s.m; i++ {
		if s.basis[i] >= nb {
			return nil
		}
		b.RowCol[i] = int32(s.basis[i])
	}
	for j := 0; j < nb; j++ {
		b.ColStat[j] = int8(s.status[j])
	}
	return b
}

// computeXB recomputes the basic values from scratch:
// x_B = B^{-1}(b − N x_N).
func (s *simplexState) computeXB() {
	m := s.m
	rhs := make([]float64, m)
	copy(rhs, s.b)
	for j := range s.cols {
		if s.status[j] == basic || s.value[j] == 0 {
			continue
		}
		for _, e := range s.cols[j] {
			rhs[e.row] -= e.coef * s.value[j]
		}
	}
	t0 := time.Now()
	s.factor.ftranVec(rhs, s.xB)
	s.ftranNS += time.Since(t0)
}

// computeDuals sets s.y = c_B^T B^{-1} for the given cost vector.
func (s *simplexState) computeDuals(cost []float64) {
	for i := 0; i < s.m; i++ {
		s.cb[i] = cost[s.basis[i]]
	}
	t0 := time.Now()
	s.factor.btran(s.cb, s.y)
	s.btranNS += time.Since(t0)
}

// refactorize rebuilds the basis factorization from the basis columns,
// then recomputes x_B.
func (s *simplexState) refactorize() error {
	t0 := time.Now()
	err := s.factor.refactorize()
	s.factorNS += time.Since(t0)
	s.nRefactor++
	if err != nil {
		return err
	}
	s.computeXB()
	return nil
}

// iterate runs simplex iterations with the given cost vector until
// optimality, unboundedness, or the iteration limit. It leaves the state at
// the final basis.
//
// Pricing is Devex (Forrest–Goldfarb reference weights), which resists the
// zigzagging Dantzig suffers on scheduling LPs whose reduced costs are
// dominated by one huge price (the online model's fake node); a long
// degenerate stall still falls back to Bland's rule for guaranteed
// termination.
func (s *simplexState) iterate(cost []float64) (Status, error) {
	m := s.m
	tol := s.opts.Tol
	sinceRefactor := 0
	// Reset the Devex reference framework for this phase.
	s.devex = make([]float64, len(s.cols))
	for j := range s.devex {
		s.devex[j] = 1
	}
	for {
		if s.iter >= s.opts.MaxIters {
			return IterLimit, nil
		}
		if sinceRefactor > 0 && s.factor.needsRefactor(sinceRefactor) {
			if err := s.refactorize(); err != nil {
				return 0, err
			}
			sinceRefactor = 0
		}
		s.computeDuals(cost)
		if debugSimplex && s.iter%2000 == 0 {
			obj := 0.0
			for i := 0; i < m; i++ {
				obj += cost[s.basis[i]] * s.xB[i]
			}
			for j := range s.cols {
				if s.status[j] != basic && s.value[j] != 0 {
					obj += cost[j] * s.value[j]
				}
			}
			fmt.Fprintf(os.Stderr, "lp: iter=%d obj=%.15g degenRun=%d flips=%d\n", s.iter, obj, s.degenRun, s.nflips)
		}
		useBland := s.opts.Bland || s.degenRun > 2*m+200

		// Pricing: pick the entering column — Devex score d²/weight, or
		// the first eligible column under Bland's rule.
		t0 := time.Now()
		entering, enterDir := s.price(cost, useBland)
		s.pricingNS += time.Since(t0)
		if entering == -1 {
			// No improving column: optimal for this cost vector.
			// Refactorise once for a clean final answer if drift is
			// plausible.
			if sinceRefactor > 0 {
				if err := s.refactorize(); err != nil {
					return 0, err
				}
			}
			return Optimal, nil
		}

		// FTRAN: w = B^{-1} A_q.
		t0 = time.Now()
		s.factor.ftranCol(s.cols[entering], s.w)
		s.ftranNS += time.Since(t0)

		// Ratio test. The entering variable moves by t ≥ 0 in direction
		// enterDir; basic i changes by −enterDir·w[i]·t.
		limit := math.Inf(1)
		if !math.IsInf(s.lower[entering], -1) && !math.IsInf(s.upper[entering], 1) {
			limit = s.upper[entering] - s.lower[entering] // bound flip span
		}
		leaving := -1
		leavePivot := 0.0
		leaveToUpper := false
		for i := 0; i < m; i++ {
			delta := -enterDir * s.w[i]
			bj := s.basis[i]
			var room float64
			var hitsUpper bool
			switch {
			case delta > tol:
				if math.IsInf(s.upper[bj], 1) {
					continue
				}
				room = (s.upper[bj] - s.xB[i]) / delta
				hitsUpper = true
			case delta < -tol:
				if math.IsInf(s.lower[bj], -1) {
					continue
				}
				room = (s.xB[i] - s.lower[bj]) / -delta
				hitsUpper = false
			default:
				continue
			}
			if room < -tol {
				room = 0 // basic slightly out of bounds from roundoff
			}
			switch {
			case room < limit-1e-12:
				limit, leaving, leavePivot, leaveToUpper = room, i, s.w[i], hitsUpper
			case room <= limit+1e-12 && leaving >= 0:
				// Tie: Bland wants the smallest variable index;
				// otherwise prefer the larger pivot for stability.
				if useBland {
					if s.basis[i] < s.basis[leaving] {
						leaving, leavePivot, leaveToUpper = i, s.w[i], hitsUpper
					}
				} else if math.Abs(s.w[i]) > math.Abs(leavePivot) {
					leaving, leavePivot, leaveToUpper = i, s.w[i], hitsUpper
				}
			case room <= limit+1e-12 && leaving < 0:
				// Ties the bound-flip span: take the basis change.
				if room < limit {
					limit = room
				}
				leaving, leavePivot, leaveToUpper = i, s.w[i], hitsUpper
			}
		}

		if math.IsInf(limit, 1) {
			return Unbounded, nil
		}
		t := limit
		if t < 0 {
			t = 0
		}
		if t <= tol {
			s.degenRun++
		} else {
			s.degenRun = 0
		}
		s.iter++

		if leaving == -1 {
			// Bound flip: the entering variable crosses its whole span.
			s.nflips++
			if s.opts.RecordPivots {
				s.pivots = append(s.pivots, Pivot{Entering: int32(entering), Leaving: -1})
			}
			for i := 0; i < m; i++ {
				s.xB[i] -= enterDir * s.w[i] * t
			}
			if enterDir > 0 {
				s.status[entering] = atUpper
				s.value[entering] = s.upper[entering]
			} else {
				s.status[entering] = atLower
				s.value[entering] = s.lower[entering]
			}
			continue
		}

		// Basis change.
		if math.Abs(leavePivot) < 1e-11 && sinceRefactor > 0 {
			// Numerically unsafe pivot: refactorise and retry. When the
			// factorization is already fresh (sinceRefactor == 0) a
			// rebuild cannot improve the pivot, so we accept it rather
			// than loop.
			if err := s.refactorize(); err != nil {
				return 0, err
			}
			sinceRefactor = 0
			continue
		}
		enterVal := s.value[entering] + enterDir*t
		if s.status[entering] == atFree {
			enterVal = enterDir * t
		}
		for i := 0; i < m; i++ {
			if i == leaving {
				continue
			}
			s.xB[i] -= enterDir * s.w[i] * t
		}
		outVar := s.basis[leaving]
		if leaveToUpper {
			s.status[outVar] = atUpper
			s.value[outVar] = s.upper[outVar]
		} else {
			s.status[outVar] = atLower
			s.value[outVar] = s.lower[outVar]
		}
		s.basis[leaving] = entering
		s.status[entering] = basic
		s.xB[leaving] = enterVal

		if s.opts.RecordPivots {
			s.pivots = append(s.pivots, Pivot{Entering: int32(entering), Leaving: int32(outVar)})
		}

		// Devex reference-weight update (Forrest–Goldfarb), using the
		// pivot row of the *pre-pivot* basis inverse.
		if !useBland {
			t0 = time.Now()
			wq := s.devex[entering]
			prowOld := s.factor.pivotRow(leaving) // pre-pivot B^{-1} row
			s.btranNS += time.Since(t0)
			t0 = time.Now()
			pivotSq := leavePivot * leavePivot
			if s.pool != nil {
				s.pool.run(len(s.cols), func(lo, hi, _ int) {
					s.devexRange(prowOld, pivotSq, wq, entering, lo, hi)
				})
			} else {
				s.devexRange(prowOld, pivotSq, wq, entering, 0, len(s.cols))
			}
			lw := wq / pivotSq
			if lw < 1 {
				lw = 1
			}
			s.devex[outVar] = lw
			if lw > 1e12 {
				// Reference framework degraded: reset.
				for j := range s.devex {
					s.devex[j] = 1
				}
			}
			s.pricingNS += time.Since(t0)
		}

		// Update the factorization: slot `leaving` now holds the entering
		// column, whose FTRAN image is still in s.w.
		t0 = time.Now()
		s.factor.update(s.w, leaving)
		s.factorNS += time.Since(t0)
		sinceRefactor++
	}
}

// priceCand is one worker's best entering-column candidate: the Devex
// score and movement direction of column j, or j == -1 for none.
type priceCand struct {
	j     int
	dir   float64
	score float64
}

// priceRange scans columns [lo, hi) for the best entering candidate. Under
// Bland's rule it returns the first eligible column. Every per-column
// computation depends only on that column's data, so scanning a subrange
// yields bit-identical candidates to the full sequential scan.
func (s *simplexState) priceRange(cost []float64, useBland bool, lo, hi int) priceCand {
	tol := s.opts.Tol
	best := priceCand{j: -1}
	for j := lo; j < hi; j++ {
		st := s.status[j]
		if st == basic {
			continue
		}
		if s.lower[j] == s.upper[j] && st != atFree {
			continue // fixed column can never improve
		}
		d := cost[j]
		for _, e := range s.cols[j] {
			d -= s.y[e.row] * e.coef
		}
		// Dual feasibility is judged RELATIVE to the column's cost
		// magnitude: with mixed cost scales (the online model's fake
		// node is ~10⁴× the real prices), an absolute tolerance lets
		// cancellation noise on truly-zero reduced costs masquerade
		// as improving columns and the solver churns at the optimum.
		dtol := tol * (1 + math.Abs(cost[j]))
		dir := 0.0
		switch st {
		case atLower:
			if d < -dtol {
				dir = 1
			}
		case atUpper:
			if d > dtol {
				dir = -1
			}
		case atFree:
			if d < -dtol {
				dir = 1
			} else if d > dtol {
				dir = -1
			}
		}
		if dir == 0 {
			continue
		}
		if useBland {
			return priceCand{j: j, dir: dir}
		}
		if score := d * d / s.devex[j]; score > best.score {
			best = priceCand{j: j, dir: dir, score: score}
		}
	}
	return best
}

// price picks the entering column, sequentially or across the worker pool.
// The merge preserves the sequential tie-breaking exactly: highest Devex
// score wins, ties go to the lowest column index (Bland: lowest eligible
// index, period), so the pivot sequence is identical for any worker count.
func (s *simplexState) price(cost []float64, useBland bool) (entering int, enterDir float64) {
	n := len(s.cols)
	if s.pool == nil {
		c := s.priceRange(cost, useBland, 0, n)
		return c.j, c.dir
	}
	cands := s.cands
	for i := range cands {
		cands[i] = priceCand{j: -1}
	}
	s.pool.run(n, func(lo, hi, chunk int) {
		cands[chunk] = s.priceRange(cost, useBland, lo, hi)
	})
	best := priceCand{j: -1}
	for _, c := range cands {
		if c.j == -1 {
			continue
		}
		if useBland {
			// Chunks cover ascending index ranges, so the first chunk
			// with a candidate holds the lowest eligible index.
			return c.j, c.dir
		}
		if c.score > best.score {
			best = c
		}
	}
	return best.j, best.dir
}

// devexRange applies the Forrest–Goldfarb reference-weight update to
// columns [lo, hi). Each column's weight is written independently, so
// partitioned execution is race-free and bit-identical to sequential.
func (s *simplexState) devexRange(prowOld []float64, pivotSq, wq float64, entering, lo, hi int) {
	for j := lo; j < hi; j++ {
		if s.status[j] == basic || j == entering {
			continue
		}
		alpha := 0.0
		for _, e := range s.cols[j] {
			alpha += prowOld[e.row] * e.coef
		}
		if alpha == 0 {
			continue
		}
		if cand := (alpha * alpha / pivotSq) * wq; cand > s.devex[j] {
			s.devex[j] = cand
		}
	}
}
