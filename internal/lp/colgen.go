package lp

import (
	"fmt"
	"math"
	"sort"

	"lips/internal/obs"
)

// Oracle prices a restricted master problem's optimal duals and extends
// the problem with violating columns (and any rows those columns need).
// SolveColGen calls Price after each solve; the oracle inspects sol.Dual —
// rows it has not yet materialized implicitly carry dual zero, which is
// exact whenever an unmaterialized row holds trivially while no working-set
// column touches it — and appends columns with negative reduced cost via
// the ordinary Problem builder API. Price returns how many columns it
// added; returning 0 without growing the problem ends the loop.
//
// When sol.Status is not Optimal (the restricted problem turned out
// infeasible or unbounded), sol.Dual may be nil; the oracle may respond by
// adding recovery columns (e.g. revealing everything), or return 0 to
// surface that status to the caller.
type Oracle interface {
	Price(p *Problem, sol *Solution) int
}

// ColGenStats reports what a SolveColGen run did beyond the final
// solution: how many pricing rounds ran, how much the restricted problem
// grew, and the simplex effort summed over every round (the Solution's own
// counters cover only the last re-solve).
type ColGenStats struct {
	Rounds     int // pricing rounds (solve + Price pairs), ≥ 1
	WarmRounds int // rounds whose solve accepted the previous round's basis
	Columns    int // columns the oracle added after the seed
	Rows       int // rows the oracle added after the seed
	Iters      int // simplex iterations summed over all rounds
	DualIters  int // dual-simplex repair pivots summed over all rounds
}

// maxColGenRounds bounds the pricing loop against a buggy oracle that
// keeps adding columns forever; real LiPS epochs converge in a handful of
// rounds, so hitting this is an error, not a truncation.
const maxColGenRounds = 10000

// SolveColGen solves min c·x over the columns reachable by the oracle,
// by repeatedly solving the restricted master problem p and asking the
// oracle to price the duals and append violating columns. Each re-solve
// is warm-started from the previous round's basis via ExtendBasis —
// appended columns enter nonbasic at their default bound, so primal
// feasibility carries over and a round typically costs a few pivots.
// p is mutated in place (it accumulates the generated columns);
// opts.WarmStart, if set, seeds only the first round. Presolve is
// disabled internally: restricted masters are small by construction, and
// an infeasible round must surface its phase-1 duals (which presolve's
// postsolve discards) so the oracle can price feasibility-restoring
// columns instead of capitulating to a full reveal.
//
// At termination no unrevealed column can improve the objective, so the
// returned solution is optimal for the full problem the oracle draws from,
// to the same tolerances as a direct solve.
func SolveColGen(p *Problem, oracle Oracle, opts Options) (*Solution, ColGenStats, error) {
	var st ColGenStats
	warm := opts.WarmStart
	for {
		ro := opts
		ro.WarmStart = warm
		ro.Presolve = PresolveOff
		sol, err := p.Solve(ro)
		if err != nil {
			return nil, st, err
		}
		st.Rounds++
		if sol.WarmStarted {
			st.WarmRounds++
		}
		st.Iters += sol.Iters
		st.DualIters += sol.DualIters
		v0, c0 := p.NumVars(), p.NumCons()
		added := oracle.Price(p, sol)
		if added == 0 && p.NumVars() == v0 && p.NumCons() == c0 {
			if opts.Metrics != nil {
				om := obs.RegisterLP(opts.Metrics)
				om.ColGenRounds.Add(float64(st.Rounds))
				om.ColGenColumns.Add(float64(st.Columns))
			}
			return sol, st, nil
		}
		st.Columns += p.NumVars() - v0
		st.Rows += p.NumCons() - c0
		if sol.Status == Optimal {
			warm = p.ExtendBasis(sol.Basis)
		} else {
			warm = nil
		}
		if st.Rounds >= maxColGenRounds {
			return sol, st, fmt.Errorf("lp: column generation did not converge after %d rounds (%d columns added)", st.Rounds, st.Columns)
		}
	}
}

// RevealOracle prices a fully materialized Problem against a restricted
// copy, revealing columns lazily: the generic oracle for problems whose
// columns already exist in memory. It is the differential-test vehicle
// (colgen must reproduce the direct solve on any corpus problem) and backs
// lips-lp -colgen. Production LiPS instead uses core's scheduling-aware
// oracle, which never materializes the full cross product.
type RevealOracle struct {
	full     *Problem
	tol      float64
	r2f      []int  // restricted var index -> full var index
	revealed []bool // per full var
}

// NewRestricted builds a restricted copy of full containing every row but
// only the columns that cannot rest at zero (nonzero lower bound, negative
// upper bound), plus the oracle that reveals the rest on demand. Solve the
// returned problem with SolveColGen(p, o, opts).
func NewRestricted(full *Problem) (*Problem, *RevealOracle) {
	p := New(full.Name() + "-restricted")
	for i := 0; i < full.NumCons(); i++ {
		p.AddCon(full.ConName(Con(i)), full.ConSense(Con(i)), full.ConRHS(Con(i)))
	}
	o := &RevealOracle{full: full, tol: 1e-9, revealed: make([]bool, full.NumVars())}
	for j := 0; j < full.NumVars(); j++ {
		lo, hi := full.Bounds(Var(j))
		if lo > 0 || hi < 0 {
			o.reveal(p, j)
		}
	}
	return p, o
}

// reveal copies full column j into p and records the mapping.
func (o *RevealOracle) reveal(p *Problem, j int) {
	fv := Var(j)
	lo, hi := o.full.Bounds(fv)
	v := p.AddVar(o.full.VarName(fv), lo, hi, o.full.Cost(fv))
	for _, e := range o.full.vars[j].col {
		p.SetCoef(Con(e.row), v, e.coef)
	}
	o.r2f = append(o.r2f, j)
	o.revealed[j] = true
}

// Price reveals every unrevealed column whose reduced cost under the
// restricted duals could improve the objective from its rest value of
// zero. An infeasible restricted solve prices against the phase-1 duals
// instead (a Farkas certificate of the restriction): columns that would
// shrink the infeasibility are revealed, and when none exists the full
// problem really is infeasible. An unbounded restriction adds nothing —
// its ray is a ray of the full problem too.
func (o *RevealOracle) Price(p *Problem, sol *Solution) int {
	switch sol.Status {
	case Optimal:
		return o.priceDuals(p, sol.Dual, func(fv Var) float64 { return o.full.Cost(fv) }, o.tol, 0)
	case Infeasible:
		if sol.Dual == nil {
			// No certificate (e.g. a presolve-detected infeasibility):
			// reveal everything and let one full round settle it.
			n := 0
			for j := range o.revealed {
				if !o.revealed[j] {
					o.reveal(p, j)
					n++
				}
			}
			return n
		}
		// Phase-1 pricing: structural columns cost 0 in the artificial
		// objective, so d_j = −y·A_j. The tolerance is looser than the
		// optimality tolerance — the phase-1 optimum left > 1e-6 of
		// residual infeasibility, so genuinely useful columns price well
		// below noise level. Reveals are capped at the number of active
		// certificate rows: every column touching an uncovered demand row
		// prices identically negative here, and an uncapped reveal would
		// drag in the whole cross product that the restriction exists to
		// avoid. The cap keeps progress guaranteed (at least one column
		// per round when any helps) while the follow-up optimal rounds
		// discriminate by true cost.
		active := 0
		for _, yi := range sol.Dual {
			if math.Abs(yi) > o.tol {
				active++
			}
		}
		if active < 1 {
			active = 1
		}
		return o.priceDuals(p, sol.Dual, func(Var) float64 { return 0 }, 100*o.tol, active)
	default:
		return 0
	}
}

// colCand is a pricing candidate: full column j with reduced cost d.
type colCand struct {
	j int
	d float64
}

// priceDuals reveals unrevealed columns whose reduced cost cost(j) − y·A_j
// says their rest value of zero is suboptimal: they could profitably
// increase (d < 0, room above zero) or decrease (d > 0, room below zero).
// limit > 0 reveals only the limit most violating candidates (ties to the
// lower index, so rounds are deterministic); 0 reveals every candidate.
func (o *RevealOracle) priceDuals(p *Problem, y []float64, cost func(Var) float64, tol float64, limit int) int {
	var cands []colCand
	for j := range o.revealed {
		if o.revealed[j] {
			continue
		}
		fv := Var(j)
		c := cost(fv)
		d := c
		for _, e := range o.full.vars[j].col {
			d -= y[e.row] * e.coef
		}
		lo, hi := o.full.Bounds(fv)
		dtol := tol * (1 + math.Abs(c))
		if (d < -dtol && hi > 0) || (d > dtol && lo < 0) {
			cands = append(cands, colCand{j: j, d: -math.Abs(d)})
		}
	}
	if limit > 0 && len(cands) > limit {
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].d != cands[b].d {
				return cands[a].d < cands[b].d
			}
			return cands[a].j < cands[b].j
		})
		cands = cands[:limit]
		sort.Slice(cands, func(a, b int) bool { return cands[a].j < cands[b].j })
	}
	for _, c := range cands {
		o.reveal(p, c.j)
	}
	return len(cands)
}

// Expand maps a solution of the restricted problem back onto the full
// problem's variable indexing; unrevealed columns are zero.
func (o *RevealOracle) Expand(sol *Solution) []float64 {
	x := make([]float64, o.full.NumVars())
	for rj, fj := range o.r2f {
		x[fj] = sol.X[rj]
	}
	return x
}
