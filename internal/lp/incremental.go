package lp

// TranslateBasis remaps a basis across a problem edit that removed,
// reordered, or added variables and constraint rows. varMap[j] is the new
// index of old variable j (−1 if removed) and conMap[i] likewise for rows;
// newVars and newCons are the edited problem's dimensions. The translated
// basis keeps every surviving basic column in its surviving row, repairs
// rows whose basic column vanished with the row's own slack, starts new
// rows on their slack, and marks new columns BasisAuto so the solver
// places them at their default bound. It returns nil when the inputs are
// inconsistent or the repair would need two columns in one slot — the
// caller then simply cold-starts, so translation is always safe to
// attempt.
//
// The repaired basis is a valid (nonsingular up to factorization) basis of
// the edited problem but not necessarily primal feasible at the new data:
// combine with Options.Dual so a dual-feasible survivor is repaired in a
// few pivots instead of being rejected.
func TranslateBasis(b *Basis, varMap, conMap []int, newVars, newCons int) *Basis {
	if b == nil || newVars < 0 || newCons < 0 ||
		len(varMap) != b.NumVars || len(conMap) != b.NumCons ||
		len(b.RowCol) != b.NumCons || len(b.ColStat) != b.NumVars+b.NumCons {
		return nil
	}
	nb := newVars + newCons
	rowCol := make([]int32, newCons)
	for i := range rowCol {
		rowCol[i] = -1
	}
	colStat := make([]int8, nb)
	for j := range colStat {
		colStat[j] = BasisAuto
	}
	// Carry the rest positions of surviving columns (structural and slack).
	for j := 0; j < b.NumVars; j++ {
		if nj := varMap[j]; nj >= 0 && nj < newVars {
			colStat[nj] = b.ColStat[j]
		}
	}
	for i := 0; i < b.NumCons; i++ {
		if ni := conMap[i]; ni >= 0 && ni < newCons {
			colStat[newVars+ni] = b.ColStat[b.NumVars+i]
		}
	}
	// Carry each surviving row's basic column.
	taken := make([]bool, nb)
	for i := 0; i < b.NumCons; i++ {
		ni := conMap[i]
		if ni < 0 || ni >= newCons {
			continue
		}
		j := int(b.RowCol[i])
		nj := -1
		switch {
		case j >= 0 && j < b.NumVars:
			if v := varMap[j]; v >= 0 && v < newVars {
				nj = v
			}
		case j >= b.NumVars && j < b.NumVars+b.NumCons:
			if nr := conMap[j-b.NumVars]; nr >= 0 && nr < newCons {
				nj = newVars + nr
			}
		}
		if nj >= 0 && !taken[nj] {
			rowCol[ni] = int32(nj)
			taken[nj] = true
		}
	}
	// Repair rows whose basic column vanished (and start brand-new rows)
	// on the row's own slack, which always yields a nonsingular basis.
	for i := 0; i < newCons; i++ {
		if rowCol[i] >= 0 {
			continue
		}
		sj := newVars + i
		if taken[sj] {
			return nil // slack already basic elsewhere: unrepairable here
		}
		rowCol[i] = int32(sj)
		taken[sj] = true
		colStat[sj] = BasisAuto
	}
	return &Basis{NumVars: newVars, NumCons: newCons, RowCol: rowCol, ColStat: colStat}
}

// ExtendBasis translates a basis captured from a prefix of p — the same
// leading variables and rows, with columns and rows appended since — onto
// p's current dimensions. Appended rows start on their slack and appended
// columns at their default bound, so a basis that was primal feasible
// stays primal feasible whenever the appended rows hold at the old point
// (true for freshly generated column-generation rows, which only the new
// columns touch). This is the warm-start bridge between pricing rounds in
// SolveColGen. Returns nil if b is nil or not a prefix of p.
func (p *Problem) ExtendBasis(b *Basis) *Basis {
	if b == nil || b.NumVars > len(p.vars) || b.NumCons > len(p.cons) {
		return nil
	}
	varMap := make([]int, b.NumVars)
	for j := range varMap {
		varMap[j] = j
	}
	conMap := make([]int, b.NumCons)
	for i := range conMap {
		conMap[i] = i
	}
	return TranslateBasis(b, varMap, conMap, len(p.vars), len(p.cons))
}
