package lp

import (
	"math"
	"time"
)

// This file implements the presolve/postsolve layer: a reduction pass that
// shrinks a problem before the simplex sees it, and the reverse sweep that
// reconstructs the full primal and dual solution — plus a valid, warm-
// startable Basis — from the reduced solve.
//
// Rules applied (to a fixpoint):
//
//   - empty rows: dropped (or the problem is declared infeasible);
//   - fixed variables (lower == upper): substituted into the RHS;
//   - empty columns: fixed at their cheaper bound when that is finite
//     (left in place otherwise so the Infeasible-versus-Unbounded status
//     ordering matches the dense reference solver);
//   - singleton rows: folded into the variable's bounds and dropped;
//   - forcing rows: a row whose extreme activity exactly meets its RHS
//     fixes every variable it touches at the corresponding bound;
//   - dominated columns: when column j is at least as helpful in every
//     shared row, no more expensive, and unbounded above, a column k with
//     the same row support is fixed at its lower bound (the rule that
//     retires the online model's fake-node overflow columns when a real
//     column prices below them).
//
// Postsolve replays the reduction stack in reverse. Removed rows get
// their slack basic and a complementary dual (zero for redundant rows;
// the bound-ratio d_j/a_ij for a singleton row whose implied bound is
// tight, in which case the variable is promoted into the basis of the
// removed row; the min/max ratio over the fixed columns for forcing
// rows), which keeps the reconstructed solution dual feasible and the
// reconstructed basis nonsingular and primal feasible — so it can seed
// the next epoch's warm start exactly like an unpresolved basis.

// Presolve stack record kinds.
const (
	recFixCol int8 = iota
	recEmptyRow
	recSingletonRow
	recForcingRow
)

// psRec is one reduction on the presolve stack.
type psRec struct {
	kind         int8
	row          int32   // recEmptyRow / recSingletonRow / recForcingRow
	col          int32   // recFixCol / recSingletonRow
	a            float64 // singleton coefficient; forcing side (+1 min, −1 max)
	val          float64 // fixed value (recFixCol)
	impLo, impHi float64 // bounds a singleton row applied (±Inf = untouched)
	oldLo, oldHi float64 // bounds before the singleton tightening
	cols         []int32 // columns a forcing row fixed
}

// presolveResult carries the reduced problem and everything postsolve
// needs to expand a reduced solution back to the original space.
type presolveResult struct {
	p          *Problem // reduced problem (nil when infeasible)
	infeasible bool
	origVar    []int32   // reduced column → original column
	origCon    []int32   // reduced row → original row
	lo, hi     []float64 // final working bounds per original column
	stack      []psRec
	rowsRemoved, colsRemoved int
}

// presolveProblem reduces p. It returns nil when no rule fires, so the
// caller solves the original problem with zero overhead.
func presolveProblem(p *Problem, tol float64) *presolveResult {
	n := len(p.vars)
	m := len(p.cons)
	pr := &presolveResult{
		lo: make([]float64, n), hi: make([]float64, n),
	}
	cost := make([]float64, n)
	for j := 0; j < n; j++ {
		pr.lo[j], pr.hi[j], cost[j] = p.vars[j].lower, p.vars[j].upper, p.vars[j].cost
	}
	lo, hi := pr.lo, pr.hi
	rhs := make([]float64, m)
	for i := 0; i < m; i++ {
		rhs[i] = p.cons[i].rhs
	}
	aliveRow := make([]bool, m)
	aliveCol := make([]bool, n)
	rowCols := make([][]int32, m)
	rowCoefs := make([][]float64, m)
	rowLen := make([]int, m)
	colLen := make([]int, n)
	for i := range aliveRow {
		aliveRow[i] = true
	}
	for j := 0; j < n; j++ {
		aliveCol[j] = true
		for _, e := range p.vars[j].col {
			if e.coef == 0 {
				continue
			}
			rowCols[e.row] = append(rowCols[e.row], int32(j))
			rowCoefs[e.row] = append(rowCoefs[e.row], e.coef)
			rowLen[e.row]++
			colLen[j]++
		}
	}

	// ftol scales an infeasibility verdict; crossings inside it are
	// repaired instead, matching the slack the simplex itself tolerates.
	ftol := func(ref float64) float64 { return 1e-7 * (1 + math.Abs(ref)) }

	fixCol := func(j int32, v float64) {
		aliveCol[j] = false
		pr.colsRemoved++
		for _, e := range p.vars[j].col {
			if e.coef == 0 || !aliveRow[e.row] {
				continue
			}
			rhs[e.row] -= e.coef * v
			rowLen[e.row]--
		}
		pr.stack = append(pr.stack, psRec{kind: recFixCol, col: j, val: v})
	}
	removeRow := func(i int32) {
		aliveRow[i] = false
		pr.rowsRemoved++
		for _, c := range rowCols[i] {
			if aliveCol[c] {
				colLen[c]--
			}
		}
	}

	changed := true
	for changed && !pr.infeasible {
		changed = false

		// Column rules: crossed bounds, fixed variables, empty columns.
		for j := int32(0); int(j) < n && !pr.infeasible; j++ {
			if !aliveCol[j] {
				continue
			}
			if lo[j] > hi[j] {
				if lo[j] > hi[j]+ftol(hi[j]) {
					pr.infeasible = true
					break
				}
				mid := 0.5 * (lo[j] + hi[j])
				lo[j], hi[j] = mid, mid
			}
			switch {
			case lo[j] == hi[j]:
				fixCol(j, lo[j])
				changed = true
			case colLen[j] == 0:
				switch {
				case cost[j] > 0 && !math.IsInf(lo[j], -1):
					fixCol(j, lo[j])
					changed = true
				case cost[j] < 0 && !math.IsInf(hi[j], 1):
					fixCol(j, hi[j])
					changed = true
				case cost[j] == 0:
					v := 0.0
					if !math.IsInf(lo[j], -1) {
						v = lo[j]
					} else if !math.IsInf(hi[j], 1) {
						v = hi[j]
					}
					fixCol(j, v)
					changed = true
				}
				// A costed column with no finite cheap bound stays: the
				// solver reports Unbounded (or Infeasible, which dense
				// finds first) itself.
			}
		}

		// Row rules: empty, singleton, forcing.
		for i := int32(0); int(i) < m && !pr.infeasible; i++ {
			if !aliveRow[i] {
				continue
			}
			sense := p.cons[i].sense
			switch rowLen[i] {
			case 0:
				bad := false
				switch sense {
				case LE:
					bad = rhs[i] < -ftol(rhs[i])
				case GE:
					bad = rhs[i] > ftol(rhs[i])
				case EQ:
					bad = math.Abs(rhs[i]) > ftol(rhs[i])
				}
				if bad {
					pr.infeasible = true
					break
				}
				removeRow(i)
				pr.stack = append(pr.stack, psRec{kind: recEmptyRow, row: i})
				changed = true
			case 1:
				var j int32 = -1
				var a float64
				for idx, c := range rowCols[i] {
					if aliveCol[c] {
						j, a = c, rowCoefs[i][idx]
						break
					}
				}
				if j < 0 || math.Abs(a) < 1e-12 {
					continue // degenerate; leave to the solver
				}
				v := rhs[i] / a
				newLo, newHi := math.Inf(-1), math.Inf(1)
				switch {
				case sense == EQ:
					newLo, newHi = v, v
				case (sense == LE) == (a > 0):
					newHi = v
				default:
					newLo = v
				}
				rec := psRec{kind: recSingletonRow, row: i, col: j, a: a,
					oldLo: lo[j], oldHi: hi[j], impLo: math.Inf(-1), impHi: math.Inf(1)}
				if newLo > lo[j] {
					if newLo > hi[j]+ftol(newLo) {
						pr.infeasible = true
						break
					}
					lo[j], rec.impLo = newLo, newLo
				}
				if newHi < hi[j] {
					if newHi < lo[j]-ftol(newHi) {
						pr.infeasible = true
						break
					}
					hi[j], rec.impHi = newHi, newHi
				}
				removeRow(i)
				pr.stack = append(pr.stack, rec)
				changed = true
			default:
				// Forcing rows: the extreme activity already meets the
				// RHS, so every variable is pinned at the matching bound.
				minAct, maxAct := 0.0, 0.0
				for idx, c := range rowCols[i] {
					if !aliveCol[c] {
						continue
					}
					a := rowCoefs[i][idx]
					if a > 0 {
						minAct += a * lo[c]
						maxAct += a * hi[c]
					} else {
						minAct += a * hi[c]
						maxAct += a * lo[c]
					}
				}
				switch sense {
				case LE:
					if minAct > rhs[i]+ftol(rhs[i]) {
						pr.infeasible = true
					}
				case GE:
					if maxAct < rhs[i]-ftol(rhs[i]) {
						pr.infeasible = true
					}
				case EQ:
					if minAct > rhs[i]+ftol(rhs[i]) || maxAct < rhs[i]-ftol(rhs[i]) {
						pr.infeasible = true
					}
				}
				if pr.infeasible {
					break
				}
				atMin := (sense == LE || sense == EQ) &&
					!math.IsInf(minAct, 0) && minAct >= rhs[i]-1e-12*(1+math.Abs(rhs[i]))
				atMax := (sense == GE || sense == EQ) &&
					!math.IsInf(maxAct, 0) && maxAct <= rhs[i]+1e-12*(1+math.Abs(rhs[i]))
				if !atMin && !atMax {
					continue
				}
				side := 1.0
				if !atMin {
					side = -1
				}
				var fixed []int32
				for idx, c := range rowCols[i] {
					if !aliveCol[c] {
						continue
					}
					a := rowCoefs[i][idx]
					v := lo[c]
					if (a > 0) != (side > 0) {
						v = hi[c]
					}
					fixCol(c, v)
					fixed = append(fixed, c)
				}
				removeRow(i)
				pr.stack = append(pr.stack, psRec{kind: recForcingRow, row: i, a: side, cols: fixed})
				changed = true
			}
		}

		// Dominated columns: only once the cheap rules run dry.
		if !changed && !pr.infeasible {
			changed = dominatePass(p, cost, lo, hi, aliveRow, aliveCol, colLen, fixCol)
		}
	}

	if pr.infeasible {
		return pr
	}
	if len(pr.stack) == 0 {
		return nil
	}

	// Assemble the reduced problem over the surviving rows and columns,
	// preserving their relative order.
	rowMap := make([]int32, m)
	for i := 0; i < m; i++ {
		if aliveRow[i] {
			rowMap[i] = int32(len(pr.origCon))
			pr.origCon = append(pr.origCon, int32(i))
		}
	}
	red := &Problem{name: p.name}
	red.cons = make([]constraint, len(pr.origCon))
	for ri, i := range pr.origCon {
		c := &p.cons[i]
		red.cons[ri] = constraint{name: c.name, sense: c.sense, rhs: rhs[i]}
	}
	for j := 0; j < n; j++ {
		if !aliveCol[j] {
			continue
		}
		pr.origVar = append(pr.origVar, int32(j))
		v := &p.vars[j]
		var col []nz
		for _, e := range v.col {
			if e.coef != 0 && aliveRow[e.row] {
				col = append(col, nz{row: int(rowMap[e.row]), coef: e.coef})
			}
		}
		red.vars = append(red.vars, variable{
			name: v.name, lower: lo[j], upper: hi[j], cost: v.cost, col: col,
		})
	}
	pr.p = red
	return pr
}

// dominatePass fixes dominated columns at their lower bound: j dominates k
// when both touch exactly the same live rows, j is at least as helpful in
// each (≤ the coefficient of k in LE rows, ≥ in GE rows, equal in EQ
// rows), costs no more, and has no upper bound to run into.
//
// Only a column with an infinite upper bound can dominate, so the pass
// first scans for one and bails out allocation-free when none exists —
// the common case for scheduling LPs, whose columns are all box-bounded.
func dominatePass(p *Problem, cost, lo, hi []float64, aliveRow, aliveCol []bool,
	colLen []int, fixCol func(int32, float64)) bool {
	const maxPattern = 12
	const maxBucket = 32
	n := len(aliveCol)
	eligible := func(j int) bool {
		return aliveCol[j] && colLen[j] >= 1 && colLen[j] <= maxPattern
	}
	anyWinner := false
	for j := 0; j < n; j++ {
		if eligible(j) && math.IsInf(hi[j], 1) {
			anyWinner = true
			break
		}
	}
	if !anyWinner {
		return false
	}
	// Bucket columns by an order-independent hash of their live row set;
	// the pairwise check below re-verifies the support exactly.
	hashOf := func(j int) uint64 {
		var h uint64 = 1469598103934665603
		for _, e := range p.vars[j].col {
			if e.coef != 0 && aliveRow[e.row] {
				h ^= (uint64(e.row) + 0x9e3779b9) * 1099511628211
			}
		}
		return h ^ uint64(colLen[j])*0x9e3779b97f4a7c15
	}
	buckets := make(map[uint64][]int32)
	for j := 0; j < n; j++ {
		if eligible(j) {
			h := hashOf(j)
			buckets[h] = append(buckets[h], int32(j))
		}
	}
	coefIn := func(k int32, row int) (float64, bool) {
		for _, e := range p.vars[k].col {
			if e.row == row && e.coef != 0 {
				return e.coef, true
			}
		}
		return 0, false
	}
	dominates := func(a, b int32) bool {
		if colLen[a] != colLen[b] ||
			!math.IsInf(hi[a], 1) || math.IsInf(lo[b], -1) ||
			cost[a] > cost[b] {
			return false
		}
		for _, ea := range p.vars[a].col {
			if ea.coef == 0 || !aliveRow[ea.row] {
				continue
			}
			bc, ok := coefIn(b, ea.row)
			if !ok {
				return false
			}
			switch p.cons[ea.row].sense {
			case LE:
				if ea.coef > bc {
					return false
				}
			case GE:
				if ea.coef < bc {
					return false
				}
			case EQ:
				if ea.coef != bc {
					return false
				}
			}
		}
		return true
	}
	fired := false
	for _, bucket := range buckets {
		if len(bucket) < 2 || len(bucket) > maxBucket {
			continue
		}
		hasWinner := false
		for _, j := range bucket {
			if math.IsInf(hi[j], 1) {
				hasWinner = true
				break
			}
		}
		if !hasWinner {
			continue
		}
		for x := 0; x < len(bucket); x++ {
			if !aliveCol[bucket[x]] {
				continue
			}
			for y := x + 1; y < len(bucket); y++ {
				if !aliveCol[bucket[y]] {
					continue
				}
				if dominates(bucket[x], bucket[y]) {
					fixCol(bucket[y], lo[bucket[y]])
					fired = true
				} else if dominates(bucket[y], bucket[x]) {
					fixCol(bucket[x], lo[bucket[x]])
					fired = true
					break
				}
			}
		}
	}
	return fired
}

// postsolve expands a reduced solution back to the original problem,
// reconstructing X, the duals, and (when the reduced solve produced a
// basis, or the whole problem presolved away) a valid Basis.
func (pr *presolveResult) postsolve(p *Problem, rsol *Solution) *Solution {
	sol := &Solution{
		Status: rsol.Status, Iters: rsol.Iters, Phase1: rsol.Phase1,
		PricingTime: rsol.PricingTime, Pivots: rsol.Pivots,
		FactorTime: rsol.FactorTime, FtranTime: rsol.FtranTime,
		BtranTime: rsol.BtranTime, Refactorizations: rsol.Refactorizations,
		FactorNNZ:    rsol.FactorNNZ,
		PresolveRows: pr.rowsRemoved, PresolveCols: pr.colsRemoved,
	}
	if rsol.Status != Optimal {
		return sol
	}
	n, m := len(p.vars), len(p.cons)
	redN := len(pr.origVar)
	X := make([]float64, n)
	dual := make([]float64, m)
	for rj, j := range pr.origVar {
		X[j] = rsol.X[rj]
	}
	if rsol.Dual != nil {
		for ri, i := range pr.origCon {
			dual[i] = rsol.Dual[ri]
		}
	}
	for t := range pr.stack {
		if rec := &pr.stack[t]; rec.kind == recFixCol {
			X[rec.col] = rec.val
		}
	}

	// Basis bookkeeping: available when the reduced solve produced a
	// basis, or when presolve dissolved the whole problem (every row and
	// column is then reconstructed by the reverse sweep).
	haveBasis := rsol.Basis != nil || (redN == 0 && len(pr.origCon) == 0)
	var rowCol []int32
	var colStat []int8
	isBasic := make([]bool, n)
	if haveBasis {
		rowCol = make([]int32, m)
		for i := range rowCol {
			rowCol[i] = -1
		}
		colStat = make([]int8, n+m)
		if rb := rsol.Basis; rb != nil {
			for rj, j := range pr.origVar {
				colStat[j] = rb.ColStat[rj]
			}
			for ri, i := range pr.origCon {
				colStat[n+int(i)] = rb.ColStat[redN+ri]
			}
			for ri, i := range pr.origCon {
				c := rb.RowCol[ri]
				if int(c) < redN {
					rowCol[i] = pr.origVar[c]
				} else {
					rowCol[i] = int32(n) + pr.origCon[int(c)-redN]
				}
			}
			for _, c := range rowCol {
				if c >= 0 && int(c) < n {
					isBasic[c] = true
				}
			}
		}
	}

	// Working bounds during the reverse sweep: start from the final
	// tightened bounds; singleton-row pops restore the earlier ones.
	wLo := append([]float64(nil), pr.lo...)
	wHi := append([]float64(nil), pr.hi...)

	// reducedCost computes d_j over the original columns against the
	// duals reconstructed so far, optionally skipping one row. Rows
	// removed before the record being replayed share no live columns
	// with it, so every dual that matters is already in place.
	reducedCost := func(j, skipRow int32) float64 {
		d := p.vars[j].cost
		for _, e := range p.vars[j].col {
			if int32(e.row) == skipRow || e.coef == 0 {
				continue
			}
			d -= dual[e.row] * e.coef
		}
		return d
	}

	for t := len(pr.stack) - 1; t >= 0; t-- {
		rec := &pr.stack[t]
		switch rec.kind {
		case recFixCol:
			if haveBasis {
				j := rec.col
				eps := 1e-7 * (1 + math.Abs(rec.val))
				switch {
				case !math.IsInf(wLo[j], -1) && rec.val <= wLo[j]+eps:
					colStat[j] = atLower
				case !math.IsInf(wHi[j], 1) && rec.val >= wHi[j]-eps:
					colStat[j] = atUpper
				case math.IsInf(wLo[j], -1) && math.IsInf(wHi[j], 1):
					colStat[j] = atFree
				default:
					// Interior against the original bounds: the value
					// came from a singleton-row tightening whose record
					// pops later and promotes this column into the basis.
					colStat[j] = atLower
				}
			}
		case recEmptyRow:
			dual[rec.row] = 0
			if haveBasis {
				rowCol[rec.row] = int32(n) + rec.row
			}
		case recForcingRow:
			i := rec.row
			// The tightest multiplier keeping every fixed column dual-
			// feasible at its bound: min over d_j/a_ij on the min side,
			// max on the max side, clamped by the row's dual sign.
			first := true
			lim := 0.0
			for _, c := range rec.cols {
				var a float64
				for _, e := range p.vars[c].col {
					if int32(e.row) == i {
						a = e.coef
						break
					}
				}
				if a == 0 {
					continue
				}
				r := reducedCost(c, i) / a
				switch {
				case first:
					lim, first = r, false
				case rec.a > 0 && r < lim:
					lim = r
				case rec.a < 0 && r > lim:
					lim = r
				}
			}
			switch p.cons[i].sense {
			case LE:
				lim = math.Min(0, lim)
			case GE:
				lim = math.Max(0, lim)
			}
			dual[i] = lim
			if haveBasis {
				rowCol[i] = int32(n) + i
			}
		case recSingletonRow:
			i, j, a := rec.row, rec.col, rec.a
			tightLo := !math.IsInf(rec.impLo, -1) &&
				math.Abs(X[j]-rec.impLo) <= 1e-7*(1+math.Abs(rec.impLo))
			tightHi := !math.IsInf(rec.impHi, 1) &&
				math.Abs(X[j]-rec.impHi) <= 1e-7*(1+math.Abs(rec.impHi))
			tight := (tightLo || tightHi) && !isBasic[j]
			if tight {
				y := reducedCost(j, i) / a
				switch p.cons[i].sense {
				case LE:
					y = math.Min(0, y)
				case GE:
					y = math.Max(0, y)
				}
				dual[i] = y
			} else {
				dual[i] = 0
			}
			if haveBasis {
				if tight {
					// The implied bound is active: x_j takes the basic
					// slot of the removed row (the row is tight, so its
					// slack rests at the matching bound) — this is what
					// keeps the reconstructed basis nonsingular and the
					// nonbasic columns on original bounds.
					rowCol[i] = j
					isBasic[j] = true
					colStat[j] = int8(basic)
					if p.cons[i].sense == GE {
						colStat[n+int(i)] = atUpper
					} else {
						colStat[n+int(i)] = atLower
					}
				} else {
					rowCol[i] = int32(n) + i
				}
			}
			wLo[j], wHi[j] = rec.oldLo, rec.oldHi
		}
	}

	for j := 0; j < n; j++ {
		X[j] = math.Min(math.Max(X[j], p.vars[j].lower), p.vars[j].upper)
	}
	sol.X = X
	sol.Objective = p.Objective(X)
	sol.Dual = dual
	if haveBasis {
		sol.Basis = &Basis{NumVars: n, NumCons: m, RowCol: rowCol, ColStat: colStat}
	}
	return sol
}

// solvePresolved runs presolve → reduced solve → postsolve. It returns
// (nil, nil, false) when presolve finds nothing to do.
func (p *Problem) solvePresolved(opts Options) (*Solution, error, bool) {
	t0 := time.Now()
	pr := presolveProblem(p, opts.Tol)
	if pr == nil {
		return nil, nil, false
	}
	if pr.infeasible {
		return &Solution{Status: Infeasible, PresolveTime: time.Since(t0),
			PresolveRows: pr.rowsRemoved, PresolveCols: pr.colsRemoved}, nil, true
	}
	reduceNS := time.Since(t0)
	var rsol *Solution
	var err error
	if len(pr.p.cons) == 0 {
		rsol, err = pr.p.solveUnconstrained(opts)
	} else {
		rsol, err = newSimplexState(pr.p, opts).run()
	}
	if err != nil {
		return nil, err, true
	}
	t1 := time.Now()
	sol := pr.postsolve(p, rsol)
	sol.PresolveTime = reduceNS + time.Since(t1)
	return sol, nil, true
}
