package lp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The lp package's text format is line-based and trivially diffable:
//
//	problem <name>
//	var <name> <lower> <upper> <cost>     # "inf"/"-inf" allowed as bounds
//	con <name> <sense> <rhs>              # sense is <=, >= or =
//	coef <con-index> <var-index> <value>  # indices are 0-based declaration order
//	# comment
//
// Coefficients refer to declaration indices rather than names so that
// duplicate names (common in generated models) stay unambiguous.

// Write serialises the problem.
func Write(w io.Writer, p *Problem) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "problem %s\n", sanitize(p.Name()))
	for i := 0; i < p.NumVars(); i++ {
		v := Var(i)
		lo, hi := p.Bounds(v)
		fmt.Fprintf(bw, "var %s %s %s %s\n", sanitize(p.VarName(v)),
			formatBound(lo), formatBound(hi), formatNum(p.Cost(v)))
	}
	for i := 0; i < p.NumCons(); i++ {
		c := Con(i)
		fmt.Fprintf(bw, "con %s %s %s\n", sanitize(p.ConName(c)),
			p.ConSense(c), formatNum(p.ConRHS(c)))
	}
	for vi := 0; vi < p.NumVars(); vi++ {
		for ci := 0; ci < p.NumCons(); ci++ {
			if coef := p.Coef(Con(ci), Var(vi)); coef != 0 {
				fmt.Fprintf(bw, "coef %d %d %s\n", ci, vi, formatNum(coef))
			}
		}
	}
	return bw.Flush()
}

// Parse reads a problem in the text format.
func Parse(r io.Reader) (*Problem, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	p := New("unnamed")
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "problem":
			if len(fields) != 2 {
				return nil, fmt.Errorf("lp: line %d: problem takes one name", line)
			}
			p.name = fields[1]
		case "var":
			if len(fields) != 5 {
				return nil, fmt.Errorf("lp: line %d: var takes name lower upper cost", line)
			}
			lo, err := parseBound(fields[2])
			if err != nil {
				return nil, fmt.Errorf("lp: line %d: %v", line, err)
			}
			hi, err := parseBound(fields[3])
			if err != nil {
				return nil, fmt.Errorf("lp: line %d: %v", line, err)
			}
			cost, err := strconv.ParseFloat(fields[4], 64)
			if err != nil {
				return nil, fmt.Errorf("lp: line %d: cost: %v", line, err)
			}
			p.AddVar(fields[1], lo, hi, cost)
		case "con":
			if len(fields) != 4 {
				return nil, fmt.Errorf("lp: line %d: con takes name sense rhs", line)
			}
			var sense Sense
			switch fields[2] {
			case "<=":
				sense = LE
			case ">=":
				sense = GE
			case "=":
				sense = EQ
			default:
				return nil, fmt.Errorf("lp: line %d: unknown sense %q", line, fields[2])
			}
			rhs, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("lp: line %d: rhs: %v", line, err)
			}
			p.AddCon(fields[1], sense, rhs)
		case "coef":
			if len(fields) != 4 {
				return nil, fmt.Errorf("lp: line %d: coef takes con var value", line)
			}
			ci, err := strconv.Atoi(fields[1])
			if err != nil || ci < 0 || ci >= p.NumCons() {
				return nil, fmt.Errorf("lp: line %d: bad constraint index %q", line, fields[1])
			}
			vi, err := strconv.Atoi(fields[2])
			if err != nil || vi < 0 || vi >= p.NumVars() {
				return nil, fmt.Errorf("lp: line %d: bad variable index %q", line, fields[2])
			}
			coef, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("lp: line %d: value: %v", line, err)
			}
			p.SetCoef(Con(ci), Var(vi), coef)
		default:
			return nil, fmt.Errorf("lp: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

func sanitize(s string) string {
	if s == "" {
		return "_"
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}

func formatBound(f float64) string {
	switch {
	case math.IsInf(f, 1):
		return "inf"
	case math.IsInf(f, -1):
		return "-inf"
	default:
		return formatNum(f)
	}
}

func parseBound(s string) (float64, error) {
	switch s {
	case "inf", "+inf":
		return Inf, nil
	case "-inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func formatNum(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
