module lips

go 1.22
