GO ?= go

.PHONY: all build test race vet bench perfsmoke lpsmoke faultsmoke tracesmoke obssmoke scalesmoke servesmoke spansmoke costsmoke

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Runs the LP benchmarks and records BENCH_lp.json (see scripts/bench.sh).
bench:
	scripts/bench.sh

# Fails if BenchmarkEpoch regresses >3x against the committed baseline.
perfsmoke:
	scripts/perfsmoke.sh

# Races the colgen/dual-simplex/basis-translation differential tests and
# checks lips-lp -colgen against the direct solve.
lpsmoke:
	scripts/lpsmoke.sh

# Races the fault-path tests and replays a seeded churn scenario through
# every scheduler, requiring bit-identical repeats.
faultsmoke:
	scripts/faultsmoke.sh

# Runs a traced lips-sim, schema-validates the JSONL, renders the
# lips-trace report and checks the Chrome export and reproducibility.
tracesmoke:
	scripts/tracesmoke.sh

# Starts a live lips-sim -listen run and scrapes /metrics, /progress and
# /debug/pprof mid-run, validating the exposition and required families.
obssmoke:
	scripts/obssmoke.sh

# Races the slot-index property tests and replays a 1k-node seeded
# -scale run under a wall-clock budget, requiring byte-identical traces.
scalesmoke:
	scripts/scalesmoke.sh

# Races the serve-mode tests, then drives a live lips-serve daemon with
# an open-loop burst: p99 submit SLO, churn survival, 429 load shedding
# and a clean SIGTERM drain.
servesmoke:
	scripts/servesmoke.sh

# Drives a live daemon and checks the span surface: /jobs/{id}/trace
# phases telescope to the e2e latency, /debug/epochs carries typed
# deferral reasons, and per-tenant histograms agree with span counts.
spansmoke:
	scripts/spansmoke.sh

# Proves the chargeback pipeline to the exact microcent: raced ledger
# tests, lips-trace -audit on a traced faulty run, and a live daemon
# under churn/cancels where /tenants sums to /audit and a burn-rate
# alert fires and resolves.
costsmoke:
	scripts/costsmoke.sh
