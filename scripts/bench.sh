#!/usr/bin/env bash
# Benchmark regression harness: runs the internal/lp benchmarks (the
# epoch-scale cold/warm pair plus the solver size sweep) and writes
# BENCH_lp.json so future changes have a perf trajectory to compare
# against. Usage: scripts/bench.sh [output.json]; BENCHTIME=10x to rerun
# with more samples.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_lp.json}
BENCHTIME=${BENCHTIME:-5x}

RAW=$(go test ./internal/lp -run '^$' -bench 'BenchmarkSolve|BenchmarkEpoch' \
	-benchtime "$BENCHTIME" -timeout 30m)
printf '%s\n' "$RAW"

printf '%s\n' "$RAW" | awk -v date="$(date -u +%FT%TZ)" -v benchtime="$BENCHTIME" '
BEGIN {
	printf "{\n  \"generated\": \"%s\",\n  \"benchtime\": \"%s\",\n", date, benchtime
	printf "  \"benchmarks\": [\n"
}
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
	iters = $2; ns = $3
	extra = ""
	for (i = 5; i + 1 <= NF; i += 2) {     # trailing "value unit" pairs
		if (extra != "") extra = extra ","
		extra = extra sprintf("\"%s\": %s", $(i + 1), $i)
	}
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
	if (extra != "") printf ", \"metrics\": {%s}", extra
	printf "}"
	if (name == "BenchmarkEpoch/cold") cold = ns
	if (name == "BenchmarkEpoch/warm") warm = ns
}
END {
	printf "\n  ],\n"
	if (cold > 0 && warm > 0)
		printf "  \"epoch_warm_speedup\": %.2f\n", cold / warm
	else
		printf "  \"epoch_warm_speedup\": null\n"
	printf "}\n"
}' > "$OUT"

echo "wrote $OUT"
