#!/usr/bin/env bash
# Benchmark regression harness: runs the internal/lp benchmarks (the
# epoch-scale cold/warm pair plus the solver size sweep), the
# internal/sim simulator benchmarks (nop-tracer, traced and shared-links
# throughput, the 10k-node/1M-task paper-scale run, and the idle-sweep
# dispatch microbenchmark), and the internal/core BenchmarkEpoch10k
# column-generation pair (cold restricted-master solve and warm
# reprice+dual-simplex re-solve at 10k machines) and writes
# BENCH_lp.json — including
# sim_tasks_per_sec, the paper-scale event-loop throughput, and the
# epoch10k_* fields — so future
# changes have a perf trajectory to compare against. Each run records the git SHA it measured; prior results are
# preserved in the file's "history" array (newest first, capped at 50)
# instead of being overwritten. Usage: scripts/bench.sh [output.json];
# BENCHTIME=10x to rerun with more samples.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_lp.json}
BENCHTIME=${BENCHTIME:-5x}

SHA=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
# The output file itself is excluded from the dirty check: re-running the
# harness on a clean tree must not label the new measurement "-dirty" just
# because the previous run's results are sitting uncommitted in $OUT.
if [ "$SHA" != unknown ] && ! git diff --quiet HEAD -- ":(exclude)$OUT" 2>/dev/null; then
	SHA="$SHA-dirty"
fi

RAW=$(go test ./internal/lp -run '^$' -bench 'BenchmarkSolve|BenchmarkEpoch' \
	-benchtime "$BENCHTIME" -timeout 30m
	go test ./internal/sim -run '^$' -bench 'BenchmarkSimulator|BenchmarkDispatch' \
		-benchtime "$BENCHTIME" -timeout 30m
	go test ./internal/core -run '^$' -bench BenchmarkEpoch10k \
		-benchtime "$BENCHTIME" -timeout 30m)
printf '%s\n' "$RAW"

TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

printf '%s\n' "$RAW" | awk -v date="$(date -u +%FT%TZ)" -v benchtime="$BENCHTIME" -v sha="$SHA" '
BEGIN {
	printf "{\n  \"generated\": \"%s\",\n  \"git_sha\": \"%s\",\n  \"benchtime\": \"%s\",\n", date, sha, benchtime
	printf "  \"benchmarks\": [\n"
}
/^Benchmark/ {
	name = $1; sub(/-[0-9]+$/, "", name)   # strip the GOMAXPROCS suffix
	iters = $2; ns = $3
	extra = ""
	for (i = 5; i + 1 <= NF; i += 2) {     # trailing "value unit" pairs
		if (extra != "") extra = extra ","
		extra = extra sprintf("\"%s\": %s", $(i + 1), $i)
	}
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
	if (extra != "") printf ", \"metrics\": {%s}", extra
	printf "}"
	if (name == "BenchmarkEpoch/cold") cold = ns
	if (name == "BenchmarkEpoch/warm") warm = ns
	if (name == "BenchmarkEpoch10k/cold") cold10k = ns
	if (name == "BenchmarkEpoch10k/warm") warm10k = ns
	if (name == "BenchmarkSimulatorThroughput10k") {
		ns10k = ns
		for (i = 5; i + 1 <= NF; i += 2)
			if ($(i + 1) == "tasks/run") tasks10k = $i
	}
}
END {
	printf "\n  ],\n"
	if (ns10k > 0 && tasks10k > 0)
		printf "  \"sim_tasks_per_sec\": %.0f,\n", tasks10k / (ns10k / 1e9)
	else
		printf "  \"sim_tasks_per_sec\": null,\n"
	if (cold > 0 && warm > 0)
		printf "  \"epoch_warm_speedup\": %.2f,\n", cold / warm
	else
		printf "  \"epoch_warm_speedup\": null,\n"
	if (cold10k > 0)
		printf "  \"epoch10k_cold_ns\": %s,\n", cold10k
	else
		printf "  \"epoch10k_cold_ns\": null,\n"
	if (warm10k > 0)
		printf "  \"epoch10k_warm_ns\": %s,\n", warm10k
	else
		printf "  \"epoch10k_warm_ns\": null,\n"
	if (cold10k > 0 && warm10k > 0)
		printf "  \"epoch10k_warm_speedup\": %.2f\n", cold10k / warm10k
	else
		printf "  \"epoch10k_warm_speedup\": null\n"
	printf "}\n"
}' > "$TMP"

# Fold the previous file (and its accumulated history) into the new
# one's "history" array, newest first. When a previous file exists this
# step is mandatory: silently writing the new run alone (the old
# behaviour when jq was missing or the previous file was malformed)
# truncated the whole trajectory, which is the one thing this harness
# exists to preserve.
if [ -s "$OUT" ]; then
	if ! command -v jq >/dev/null 2>&1; then
		echo "bench.sh: jq is required to append to $OUT's history; refusing to overwrite it" >&2
		exit 1
	fi
	if ! jq empty "$OUT" 2>/dev/null; then
		echo "bench.sh: $OUT is not valid JSON; fix or remove it before re-running" >&2
		exit 1
	fi
	jq --slurpfile prev "$OUT" \
		'. + {history: ([($prev[0] | del(.history))] + ($prev[0].history // []))[:50]}' \
		"$TMP" > "$OUT.tmp"
	mv "$OUT.tmp" "$OUT"
else
	cp "$TMP" "$OUT"
fi

echo "wrote $OUT"
