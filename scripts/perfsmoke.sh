#!/usr/bin/env bash
# Perf regression smoke: runs BenchmarkEpoch, the simulator
# throughput benchmarks — the 20-node run whose Options{} path exercises
# the disabled nop tracer, the 10k-node/1M-task paper-scale run, and the
# idle-sweep dispatch microbenchmark — and BenchmarkEpoch10k, the
# column-generation epoch solve at 10k machines (cold restricted master
# and warm reprice+dual-simplex re-solve), and fails when the measured ns/op
# exceeds the committed
# BENCH_lp.json baseline by more than the allowed factor (default 3×,
# absorbing CI machine noise while still catching order-of-magnitude
# regressions like losing the sparse factorization, the warm-start path,
# or an allocation leak onto the tracing-disabled hot path).
#
# Usage: scripts/perfsmoke.sh [baseline.json]
#   BENCHTIME=3x  samples per benchmark (default 3x)
#   MAXFACTOR=3   allowed slowdown over the baseline
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=${1:-BENCH_lp.json}
BENCHTIME=${BENCHTIME:-3x}
MAXFACTOR=${MAXFACTOR:-3}

if [ ! -f "$BASELINE" ]; then
	echo "perfsmoke: no baseline $BASELINE; nothing to compare" >&2
	exit 0
fi
if ! command -v jq >/dev/null 2>&1; then
	echo "perfsmoke: jq not available; skipping comparison" >&2
	exit 0
fi

RAW=$(go test ./internal/lp -run '^$' -bench 'BenchmarkEpoch$' -benchtime "$BENCHTIME" -timeout 30m
	go test ./internal/sim -run '^$' \
		-bench 'BenchmarkSimulatorThroughput$|BenchmarkSimulatorThroughput10k$|BenchmarkDispatch$' \
		-benchtime "$BENCHTIME" -timeout 30m
	go test ./internal/core -run '^$' -bench 'BenchmarkEpoch10k$' \
		-benchtime "$BENCHTIME" -timeout 30m)
printf '%s\n' "$RAW"

fail=0
for name in BenchmarkEpoch/cold BenchmarkEpoch/warm BenchmarkSimulatorThroughput \
	BenchmarkSimulatorThroughput10k BenchmarkDispatch \
	BenchmarkEpoch10k/cold BenchmarkEpoch10k/warm; do
	base=$(jq -r --arg n "$name" \
		'.benchmarks[] | select(.name == $n) | .ns_per_op' "$BASELINE")
	if [ -z "$base" ] || [ "$base" = null ]; then
		echo "perfsmoke: $name missing from baseline; skipping" >&2
		continue
	fi
	now=$(printf '%s\n' "$RAW" | awk -v n="$name" \
		'$1 ~ "^"n"(-[0-9]+)?$" { print $3; exit }')
	if [ -z "$now" ]; then
		echo "perfsmoke: FAIL: $name did not run" >&2
		fail=1
		continue
	fi
	verdict=$(awk -v now="$now" -v base="$base" -v f="$MAXFACTOR" \
		'BEGIN { printf "%.2f %d", now / base, (now > base * f) }')
	ratio=${verdict% *}
	bad=${verdict#* }
	echo "perfsmoke: $name ${now} ns/op vs baseline ${base} ns/op (${ratio}x)"
	if [ "$bad" = 1 ]; then
		echo "perfsmoke: FAIL: $name regressed more than ${MAXFACTOR}x" >&2
		fail=1
	fi
done
exit "$fail"
