#!/usr/bin/env bash
# Service-mode smoke: races the serve/sim/sched concurrency tests, then
# stands up a real lips-serve daemon on a 1000-node cluster and drives it
# with lips-load:
#
#   1. a 1000-submission open-loop burst must be fully admitted within
#      the p99 submit-latency SLO (backpressure headroom: queue-cap is
#      sized above the burst);
#   2. node churn injected mid-run must not kill the daemon — epochs keep
#      advancing and the LiPS warm-start path keeps translating bases;
#   3. an over-driven burst against a tiny queue must shed load as 429s
#      (visible in lips_serve_admission_total), never as 5xx errors;
#   4. SIGTERM must drain and exit 0.
#
# Usage: scripts/servesmoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

go test -race ./internal/serve -timeout 10m
go test -race ./internal/sim -run 'Serve|AddJob|Cancel|StepUntil|InjectFault' -timeout 10m
go test -race ./internal/sched -run 'Arrival|ReInit' -timeout 10m

BIN=$(mktemp -d)
SRV_PID=
cleanup() {
	[ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
	rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/lips-serve" ./cmd/lips-serve
go build -o "$BIN/lips-load" ./cmd/lips-load

wait_url() { # logfile -> base URL, polling until the daemon prints it
	local log=$1 url= i
	for i in $(seq 1 100); do
		url=$(sed -n 's|^lips-serve: listening on \(http://.*\)$|\1|p' "$log")
		[ -n "$url" ] && { echo "$url"; return 0; }
		sleep 0.1
	done
	return 1
}

# --- 1. admitted burst on a 1k-node cluster, inside the SLO -----------
# Aggregate LiPS (the default) groups the 1000 nodes by instance type,
# so the direct simplex — the path that warm-starts and translates bases
# across churn — stays fast without column generation.
"$BIN/lips-serve" -listen 127.0.0.1:0 -cluster random -nodes 1000 -scheduler lips \
	-epoch-sim 60 -epoch-wall 20ms -queue-cap 4096 -admit-per-epoch 512 \
	>"$BIN/serve.log" 2>&1 &
SRV_PID=$!
URL=$(wait_url "$BIN/serve.log") || { echo "servesmoke: FAIL: daemon never served" >&2; cat "$BIN/serve.log" >&2; exit 1; }
echo "servesmoke: daemon at $URL (pid $SRV_PID)"

curl -fsS "$URL/healthz" | grep -qx ok || { echo "servesmoke: FAIL: /healthz" >&2; exit 1; }

"$BIN/lips-load" -addr "$URL" -rate 2000 -total 1000 -tenants 4 \
	-archetype grep -input-mb 256 -slo-p99-ms 250 >"$BIN/load.json" || {
	echo "servesmoke: FAIL: burst missed the SLO or errored:" >&2
	cat "$BIN/load.json" >&2
	exit 1
}
cat "$BIN/load.json"
jq -e '.accepted == 1000 and .errors == 0' "$BIN/load.json" >/dev/null || {
	echo "servesmoke: FAIL: burst not fully admitted: $(cat "$BIN/load.json")" >&2
	exit 1
}

# --- 2. mid-run /metrics scrape, then churn survival ------------------
curl -fsS "$URL/metrics" >"$BIN/metrics.txt"
for fam in \
	'lips_serve_epochs_total counter' \
	'lips_serve_admission_total counter' \
	'lips_serve_queue_depth gauge' \
	'lips_serve_submit_latency_seconds histogram'; do
	grep -q "^# TYPE $fam\$" "$BIN/metrics.txt" || {
		echo "servesmoke: FAIL: /metrics missing family \"$fam\"" >&2
		exit 1
	}
done

epochs_before=$(awk '$1 == "lips_serve_epochs_total" {print $2}' "$BIN/metrics.txt")
curl -fsS -XPOST "$URL/admin/churn?node=3&kind=down" >/dev/null
sleep 1
curl -fsS -XPOST "$URL/admin/churn?node=3&kind=up" >/dev/null
sleep 1
curl -fsS "$URL/metrics" >"$BIN/metrics2.txt"
epochs_after=$(awk '$1 == "lips_serve_epochs_total" {print $2}' "$BIN/metrics2.txt")
awk -v a="$epochs_before" -v b="$epochs_after" 'BEGIN { exit !(b > a) }' || {
	echo "servesmoke: FAIL: epochs stalled across churn ($epochs_before -> $epochs_after)" >&2
	cat "$BIN/serve.log" >&2
	exit 1
}
awk '$1 == "lips_serve_churn_total{kind=\"down\"}" && $2 >= 1 { d = 1 }
	$1 == "lips_serve_churn_total{kind=\"up\"}" && $2 >= 1 { u = 1 }
	END { exit !(d && u) }' "$BIN/metrics2.txt" || {
	echo "servesmoke: FAIL: churn counters missing" >&2
	exit 1
}
# The LiPS epoch survives churn via warm-started bases, not cold restarts.
warm=$(awk '$1 == "lips_sched_warm_start_offers_total" {print $2}' "$BIN/metrics2.txt")
[ -n "$warm" ] && awk -v w="$warm" 'BEGIN { exit !(w > 0) }' || {
	echo "servesmoke: FAIL: no warm-start offers after churn" >&2
	exit 1
}

# --- 3. graceful shutdown --------------------------------------------
kill -TERM "$SRV_PID"
code=0
wait "$SRV_PID" || code=$?
SRV_PID=
[ "$code" -eq 0 ] || { echo "servesmoke: FAIL: daemon exited $code on SIGTERM" >&2; cat "$BIN/serve.log" >&2; exit 1; }
grep -q '^lips-serve: stopped$' "$BIN/serve.log" || {
	echo "servesmoke: FAIL: no clean-stop banner" >&2
	cat "$BIN/serve.log" >&2
	exit 1
}

# --- 4. over-drive a tiny queue: shed as 429, never 5xx ---------------
"$BIN/lips-serve" -listen 127.0.0.1:0 -cluster random -nodes 100 -scheduler fair \
	-epoch-sim 60 -epoch-wall 50ms -queue-cap 64 -admit-per-epoch 8 \
	>"$BIN/serve2.log" 2>&1 &
SRV_PID=$!
URL=$(wait_url "$BIN/serve2.log") || { echo "servesmoke: FAIL: second daemon never served" >&2; cat "$BIN/serve2.log" >&2; exit 1; }

"$BIN/lips-load" -addr "$URL" -rate 4000 -total 2000 -tenants 4 \
	-archetype grep -input-mb 256 >"$BIN/load2.json" || {
	echo "servesmoke: FAIL: over-drive run errored:" >&2
	cat "$BIN/load2.json" >&2
	exit 1
}
cat "$BIN/load2.json"
jq -e '.rejected > 0 and .errors == 0 and .accepted > 0' "$BIN/load2.json" >/dev/null || {
	echo "servesmoke: FAIL: over-drive should shed via 429s without errors: $(cat "$BIN/load2.json")" >&2
	exit 1
}

kill -TERM "$SRV_PID"
code=0
wait "$SRV_PID" || code=$?
SRV_PID=
[ "$code" -eq 0 ] || { echo "servesmoke: FAIL: second daemon exited $code" >&2; cat "$BIN/serve2.log" >&2; exit 1; }

echo "servesmoke: OK"
