#!/usr/bin/env bash
# LP solver smoke: races the column-generation, dual-simplex and basis-
# translation differential tests — the suites that pin the restricted
# master to the full solve (objectives to 1e-6 relative, integral plans
# byte-identical) at reduced scale — then runs a quick lips-lp -colgen
# -dual end-to-end check against the direct solve on a generated problem.
#
# Usage: scripts/lpsmoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

go test -race ./internal/lp \
	-run 'ColGen|Dual|Translate|Extend|Incremental'
go test -race ./internal/core \
	-run 'OnlineColGen|TranslateOnlineBasis|FilterMachinesIndex'
go test -race ./internal/sched -run 'LiPSColGen|LiPSInitTwice'

BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT
go build -o "$BIN/lips-lp" ./cmd/lips-lp

# A small dense LP: colgen and the direct solve must print the same
# objective line.
PROB="$BIN/prob.lp"
{
	echo "problem smoke"
	for j in $(seq 0 19); do
		echo "var x$j 0 10 $((j % 7 + 1))"
	done
	for i in $(seq 0 4); do
		echo "con c$i >= 8"
	done
	for i in $(seq 0 4); do
		for j in $(seq 0 19); do
			if [ $(((i + j) % 3)) -ne 0 ]; then
				echo "coef $i $j $(((i * j) % 5 + 1))"
			fi
		done
	done
} > "$PROB"

direct=$("$BIN/lips-lp" "$PROB" | grep '^objective:')
colgen=$("$BIN/lips-lp" -colgen -dual "$PROB" | grep '^objective:')
echo "lpsmoke: direct $direct"
echo "lpsmoke: colgen $colgen"
if [ "$direct" != "$colgen" ]; then
	echo "lpsmoke: FAIL: colgen objective diverged from direct solve" >&2
	exit 1
fi
echo "lpsmoke: OK"
