#!/usr/bin/env bash
# Span smoke: stands up a live lips-serve daemon and checks the
# observability surface end to end:
#
#   1. submit a small burst across three tenants and wait for every job
#      to finish, capturing the per-request CSV from lips-load;
#   2. every /jobs/{id}/trace must telescope — phase durations sum to
#      the end-to-end sim latency — with ordered milestones and an
#      exact micro-cent cost;
#   3. /debug/epochs must expose the admission decisions: every job
#      accounted for, deferral reasons inside the typed taxonomy, and
#      the solver one-liner present;
#   4. the per-tenant histograms on /metrics must agree with the span
#      counts, and /readyz must flip 200 -> 503 across SIGTERM drain.
#
# Usage: scripts/spansmoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
SRV_PID=
cleanup() {
	[ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
	rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/lips-serve" ./cmd/lips-serve
go build -o "$BIN/lips-load" ./cmd/lips-load

"$BIN/lips-serve" -listen 127.0.0.1:0 -cluster paper20 -scheduler lips \
	-epoch-sim 60 -epoch-wall 10ms -queue-cap 256 -admit-per-epoch 4 \
	-log-level info -log-format json \
	>"$BIN/serve.log" 2>"$BIN/serve.err.log" &
SRV_PID=$!
URL=
for i in $(seq 1 100); do
	URL=$(sed -n 's|^lips-serve: listening on \(http://.*\)$|\1|p' "$BIN/serve.log")
	[ -n "$URL" ] && break
	sleep 0.1
done
[ -n "$URL" ] || { echo "spansmoke: FAIL: daemon never served" >&2; cat "$BIN/serve.log" "$BIN/serve.err.log" >&2; exit 1; }
echo "spansmoke: daemon at $URL (pid $SRV_PID)"

curl -fsS "$URL/readyz" | grep -qx ok || { echo "spansmoke: FAIL: /readyz not ok while serving" >&2; exit 1; }

# --- 1. burst, then drain to completion -------------------------------
TOTAL=12
# Rate far above admit-per-epoch x epoch frequency so the queue backs up
# and the decision ring records fair-share deferrals.
"$BIN/lips-load" -addr "$URL" -rate 5000 -total "$TOTAL" -tenants 3 \
	-archetype grep -input-mb 256 -out-csv "$BIN/load.csv" >"$BIN/load.json" || {
	echo "spansmoke: FAIL: load run errored:" >&2
	cat "$BIN/load.json" >&2
	exit 1
}
jq -e --argjson n "$TOTAL" '.accepted == $n and .errors == 0' "$BIN/load.json" >/dev/null || {
	echo "spansmoke: FAIL: burst not fully admitted: $(cat "$BIN/load.json")" >&2
	exit 1
}
# The CSV carries one row per request plus the header.
rows=$(($(wc -l <"$BIN/load.csv") - 1))
head -1 "$BIN/load.csv" | grep -qx 'seq,tenant,status,latency_ms,retry_after_sec' || {
	echo "spansmoke: FAIL: bad CSV header: $(head -1 "$BIN/load.csv")" >&2
	exit 1
}
[ "$rows" -eq "$TOTAL" ] || { echo "spansmoke: FAIL: CSV has $rows rows, want $TOTAL" >&2; exit 1; }

for i in $(seq 1 200); do
	done_jobs=$(curl -fsS "$URL/stats" | jq '.jobs.done // 0')
	[ "$done_jobs" -eq "$TOTAL" ] && break
	sleep 0.1
done
[ "$done_jobs" -eq "$TOTAL" ] || {
	echo "spansmoke: FAIL: only $done_jobs/$TOTAL jobs done" >&2
	curl -fsS "$URL/stats" >&2 || true
	exit 1
}

# --- 2. traces telescope ----------------------------------------------
for id in $(seq 0 $((TOTAL - 1))); do
	curl -fsS "$URL/jobs/$id/trace" >"$BIN/trace.json"
	jq -e '
		.outcome == "done"
		and .submitted_sim >= 0
		and .admitted_sim >= .submitted_sim
		and .planned_sim >= .admitted_sim
		and .first_launch_sim >= .planned_sim
		and .done_sim >= .first_launch_sim
		and .admitted_epoch > 0
		and .cost_uc > 0
		and (([.phases[].dur_sim] | add) - .e2e_sim | if . < 0 then -. else . end) < 1e-6
	' "$BIN/trace.json" >/dev/null || {
		echo "spansmoke: FAIL: job $id trace does not telescope:" >&2
		cat "$BIN/trace.json" >&2
		exit 1
	}
done
echo "spansmoke: $TOTAL traces telescope (phases sum to e2e)"

# --- 3. epoch decisions -----------------------------------------------
curl -fsS "$URL/debug/epochs" >"$BIN/epochs.json"
jq -e --argjson n "$TOTAL" '
	.total > 0
	and ([.epochs[].admitted_count] | add) == $n
	and ([.epochs[].deferred[]?.reason]
		| all(. == "queue-cap" or . == "fair-share-rank"
			or . == "solver-backpressure" or . == "no-capacity" or . == "draining"))
	and ([.epochs[] | .solver // ""] | any(. != ""))
' "$BIN/epochs.json" >/dev/null || {
	echo "spansmoke: FAIL: /debug/epochs decisions malformed:" >&2
	cat "$BIN/epochs.json" >&2
	exit 1
}
# admit-per-epoch 4 against a 12-job burst must defer some jobs.
jq -e '[.epochs[].deferred_count] | add > 0' "$BIN/epochs.json" >/dev/null || {
	echo "spansmoke: FAIL: no deferrals despite admit-per-epoch < burst" >&2
	exit 1
}

# --- 4. histograms agree with spans, readiness flips on drain ---------
curl -fsS "$URL/metrics" >"$BIN/metrics.txt"
spans_done=$(awk '$1 == "lips_serve_spans_total{outcome=\"done\"}" {print $2}' "$BIN/metrics.txt")
[ "$spans_done" = "$TOTAL" ] || {
	echo "spansmoke: FAIL: spans_total{done} = ${spans_done:-missing}, want $TOTAL" >&2
	exit 1
}
e2e_count=$(awk -F'[ }]' '/^lips_serve_tenant_e2e_seconds_count\{/ {s += $NF} END {print s+0}' "$BIN/metrics.txt")
[ "$e2e_count" -eq "$TOTAL" ] || {
	echo "spansmoke: FAIL: tenant e2e observations = $e2e_count, want $TOTAL" >&2
	exit 1
}
grep -q '^# TYPE lips_serve_epoch_solve_share histogram$' "$BIN/metrics.txt" || {
	echo "spansmoke: FAIL: solve-share histogram missing" >&2
	exit 1
}

kill -TERM "$SRV_PID"
code=0
wait "$SRV_PID" || code=$?
SRV_PID=
[ "$code" -eq 0 ] || { echo "spansmoke: FAIL: daemon exited $code on SIGTERM" >&2; cat "$BIN/serve.err.log" >&2; exit 1; }
grep -q '^lips-serve: stopped$' "$BIN/serve.log" || {
	echo "spansmoke: FAIL: no clean-stop banner" >&2
	exit 1
}
# Structured logs must have recorded the lifecycle at info level.
jq -es 'any(.[]; .msg == "epoch loop started") and any(.[]; .msg == "drain started")' \
	"$BIN/serve.err.log" >/dev/null || {
	echo "spansmoke: FAIL: lifecycle records missing from the json log:" >&2
	cat "$BIN/serve.err.log" >&2
	exit 1
}

echo "spansmoke: OK"
