#!/usr/bin/env bash
# Cost smoke: proves the chargeback pipeline end to end, to the exact
# microcent.
#
#   1. race the ledger-conservation, burn-engine and serve chargeback
#      tests;
#   2. offline: a traced multi-tenant run with faults + speculation must
#      pass lips-trace -audit (event-rebuilt ledger == every embedded
#      sample, per category AND per tenant), and the -by-job rollup must
#      conserve the run total against the sampled time series;
#   3. live: a lips-serve daemon with SLO burn-rate alerting and a
#      tenant budget takes a weighted burst under node churn and
#      mid-flight cancels; /audit must stay green throughout, a
#      budget-exhausted deferral and a firing e2e burn alert must
#      appear, the alert must resolve after drain, and once quiesced the
#      /tenants rows must sum to /audit's ledger totals per category;
#   4. SIGTERM drains cleanly with the alert lifecycle in the log.
#
# Usage: scripts/costsmoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
SRV_PID=
cleanup() {
	[ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
	rm -rf "$BIN"
}
trap cleanup EXIT

# --- 1. raced property tests ------------------------------------------
go test -race ./internal/cost/ >/dev/null
go test -race -run 'Burn' ./internal/obs/ >/dev/null
go test -race -run 'LedgerConservationUnderChurn|TenantChargebackLiveMatchesReplay' ./internal/sim/ >/dev/null
go test -race -run 'TenantsAndAuditEndpoints|BudgetExhaustedDeferral|SLOBurnAlertLifecycle' ./internal/serve/ >/dev/null
echo "costsmoke: raced chargeback tests green"

go build -o "$BIN/lips-sim" ./cmd/lips-sim
go build -o "$BIN/lips-trace" ./cmd/lips-trace
go build -o "$BIN/lips-serve" ./cmd/lips-serve
go build -o "$BIN/lips-load" ./cmd/lips-load

# --- 2. offline audit: trace replay rebuilds the ledger ----------------
"$BIN/lips-sim" -workload swim -jobs 40 -faults 2 -fault-stores 1 -fault-slowdowns 2 \
	-speculative -trace "$BIN/run.jsonl" >/dev/null
"$BIN/lips-trace" -audit "$BIN/run.jsonl" | tee "$BIN/audit.txt"
grep -q 'OK' "$BIN/audit.txt" || { echo "costsmoke: FAIL: offline audit not OK" >&2; exit 1; }
"$BIN/lips-trace" -by-job 5 -csv "$BIN/jobs.csv" "$BIN/run.jsonl" >/dev/null
"$BIN/lips-trace" -csv "$BIN/series.csv" "$BIN/run.jsonl" >/dev/null
rollup=$(awk -F, 'NR > 1 {s += $NF} END {print s+0}' "$BIN/jobs.csv")
series=$(awk -F, 'NR > 1 {last = $2} END {print last+0}' "$BIN/series.csv")
[ "$rollup" = "$series" ] || {
	echo "costsmoke: FAIL: by-job rollup ${rollup}uc != sampled total ${series}uc" >&2
	exit 1
}
echo "costsmoke: offline audit reconciled (${rollup}uc conserved across rollup and series)"

# --- 3. live daemon under churn, cancels and a tenant budget -----------
# admit-per-epoch 2 backs the burst up across many epochs, so the hog
# tenant's first completion exhausts its budget while its later jobs are
# still queued, and every late job blows the 30 sim-sec e2e objective.
"$BIN/lips-serve" -listen 127.0.0.1:0 -cluster paper20 -scheduler lips \
	-epoch-sim 60 -epoch-wall 10ms -queue-cap 256 -admit-per-epoch 2 \
	-slo-e2e 30 -slo-budget 0.25 -slo-short 300 -slo-long 600 \
	-budget tenant-3=0.0001 \
	-log-level info -log-format json \
	>"$BIN/serve.log" 2>"$BIN/serve.err.log" &
SRV_PID=$!
URL=
for i in $(seq 1 100); do
	URL=$(sed -n 's|^lips-serve: listening on \(http://.*\)$|\1|p' "$BIN/serve.log")
	[ -n "$URL" ] && break
	sleep 0.1
done
[ -n "$URL" ] || { echo "costsmoke: FAIL: daemon never served" >&2; cat "$BIN/serve.log" "$BIN/serve.err.log" >&2; exit 1; }
echo "costsmoke: daemon at $URL (pid $SRV_PID)"

TOTAL=20
# Weighted mix: tenant-3 takes ~5/8 of the burst and owns the budget.
"$BIN/lips-load" -addr "$URL" -rate 5000 -total "$TOTAL" -tenant-weights 1,1,1,5 \
	-archetype grep -input-mb 256 >"$BIN/load.json" || {
	echo "costsmoke: FAIL: load run errored: $(cat "$BIN/load.json")" >&2
	exit 1
}
jq -e --argjson n "$TOTAL" '.accepted == $n and .errors == 0' "$BIN/load.json" >/dev/null || {
	echo "costsmoke: FAIL: burst not fully admitted: $(cat "$BIN/load.json")" >&2
	exit 1
}

# Node churn while the burst is in flight: crash a node, bring it back.
curl -fsS -XPOST "$URL/admin/churn?node=3&kind=down" >/dev/null
sleep 0.3
curl -fsS -XPOST "$URL/admin/churn?node=3&kind=up" >/dev/null

# Mid-flight: /audit must already balance, and churn + spend must surface
# a budget-exhausted deferral and a firing burn alert.
deferral= firing=
for i in $(seq 1 200); do
	curl -fsS "$URL/audit" | jq -e '.ok' >/dev/null || {
		echo "costsmoke: FAIL: /audit drifted mid-churn" >&2
		curl -sS "$URL/audit" >&2 || true
		exit 1
	}
	[ -z "$deferral" ] && curl -fsS "$URL/debug/epochs" |
		jq -e '[.epochs[].deferred[]?.reason] | any(. == "budget-exhausted")' >/dev/null && deferral=yes
	[ -z "$firing" ] && curl -fsS "$URL/alerts" |
		jq -e '[.alerts[]? | select(.slo == "e2e" and .fired_sim > 0)] | length > 0' >/dev/null && firing=yes
	[ -n "$deferral" ] && [ -n "$firing" ] && break
	sleep 0.05
done
[ -n "$deferral" ] || { echo "costsmoke: FAIL: no budget-exhausted deferral recorded" >&2; curl -sS "$URL/debug/epochs" >&2 || true; exit 1; }
[ -n "$firing" ] || { echo "costsmoke: FAIL: e2e burn alert never fired" >&2; curl -sS "$URL/alerts" >&2 || true; exit 1; }
echo "costsmoke: budget-exhausted deferral and firing e2e alert observed"

# The hog tenant must be flagged over budget on its chargeback row.
curl -fsS "$URL/tenants/tenant-3" | jq -e '.over_budget and .budget_usd == 0.0001' >/dev/null || {
	echo "costsmoke: FAIL: tenant-3 not over budget:" >&2
	curl -sS "$URL/tenants/tenant-3" >&2 || true
	exit 1
}

# Cancel whatever has not finished — including the budget-blocked jobs —
# then wait for every submission to reach a terminal state.
for id in $(seq 0 $((TOTAL - 1))); do
	state=$(curl -fsS "$URL/status?id=$id" | jq -r .state)
	case "$state" in
	done | cancelled) ;;
	*) curl -sS -XPOST "$URL/cancel?id=$id" >/dev/null || true ;;
	esac
done
terminal=0
for i in $(seq 1 200); do
	terminal=$(curl -fsS "$URL/stats" | jq '(.jobs.done // 0) + (.jobs.cancelled // 0)')
	[ "$terminal" -eq "$TOTAL" ] && break
	sleep 0.1
done
[ "$terminal" -eq "$TOTAL" ] || {
	echo "costsmoke: FAIL: only $terminal/$TOTAL jobs terminal" >&2
	curl -fsS "$URL/stats" >&2 || true
	exit 1
}

# With no work left the burn windows empty out and the alert resolves.
resolved=
for i in $(seq 1 200); do
	curl -fsS "$URL/alerts" >"$BIN/alerts.json"
	jq -e '.firing == 0 and ([.alerts[]? | select(.state == "resolved" and .resolved_sim >= .fired_sim)] | length > 0)' \
		"$BIN/alerts.json" >/dev/null && { resolved=yes; break; }
	sleep 0.05
done
[ -n "$resolved" ] || { echo "costsmoke: FAIL: alert never resolved after drain:" >&2; cat "$BIN/alerts.json" >&2; exit 1; }
echo "costsmoke: burn alert resolved after the queue drained"

# Quiesced: no running work, no churn — /tenants must sum to /audit's
# ledger, per category and in total, to the exact microcent.
curl -fsS "$URL/audit" >"$BIN/audit.json"
curl -fsS "$URL/tenants" >"$BIN/tenants.json"
jq -e '.ok and .total_uc == .tenant_sum_uc and .total_uc == .metric_tenant_uc and .total_uc == .metric_category_uc' \
	"$BIN/audit.json" >/dev/null || {
	echo "costsmoke: FAIL: final /audit not balanced:" >&2
	cat "$BIN/audit.json" >&2
	exit 1
}
jq -es '
	(.[0].tenants | map(.total_uc) | add) as $rows
	| (.[1].total_uc) as $ledger
	| ($rows == $ledger)
	and ([.[0].tenants[].categories_uc // {} | to_entries[]]
		| group_by(.key) | map({key: .[0].key, value: (map(.value) | add)})
		| from_entries | with_entries(select(.value != 0))) ==
		(.[1].categories_uc | with_entries(select(.value != 0)))
' "$BIN/tenants.json" "$BIN/audit.json" >/dev/null || {
	echo "costsmoke: FAIL: /tenants rows do not sum to the /audit ledger:" >&2
	cat "$BIN/tenants.json" "$BIN/audit.json" >&2
	exit 1
}
total_usd=$(jq -r .total_usd "$BIN/audit.json")
echo "costsmoke: tenant chargebacks sum to the ledger (\$$total_usd) per category"

# Metric families backing the dashboards must be live.
curl -fsS "$URL/metrics" >"$BIN/metrics.txt"
for family in lips_cost_microcents_total lips_serve_slo_burn_rate lips_serve_slo_alerts_firing; do
	grep -q "^# TYPE $family " "$BIN/metrics.txt" || {
		echo "costsmoke: FAIL: metric family $family missing" >&2
		exit 1
	}
done
awk '$1 ~ /^lips_serve_slo_alert_transitions_total{state="firing"}$/ {f = $2} \
	$1 ~ /^lips_serve_slo_alert_transitions_total{state="resolved"}$/ {r = $2} \
	END {exit !(f >= 1 && r >= 1)}' "$BIN/metrics.txt" || {
	echo "costsmoke: FAIL: alert transition counters missing firing/resolved" >&2
	grep lips_serve_slo "$BIN/metrics.txt" >&2 || true
	exit 1
}

# --- 4. clean drain with the alert lifecycle in the log ----------------
kill -TERM "$SRV_PID"
code=0
wait "$SRV_PID" || code=$?
SRV_PID=
[ "$code" -eq 0 ] || { echo "costsmoke: FAIL: daemon exited $code on SIGTERM" >&2; cat "$BIN/serve.err.log" >&2; exit 1; }
jq -es 'any(.[]; .msg == "slo alert firing") and any(.[]; .msg == "slo alert resolved")' \
	"$BIN/serve.err.log" >/dev/null || {
	echo "costsmoke: FAIL: alert lifecycle missing from the structured log" >&2
	exit 1
}

echo "costsmoke: OK"
