#!/usr/bin/env bash
# Scale smoke: races the slot-index property tests and the indexed-vs-
# legacy dispatch differential, then drives a 1k-node / 100k-task seeded
# lips-sim -scale run under a wall-clock budget, schema-validates its
# JSONL trace, and requires a repeat run to reproduce the trace byte for
# byte — the paper-scale determinism gate.
#
# Usage: scripts/scalesmoke.sh
#   BUDGET=120  wall-clock seconds allowed for one -scale 1000 run
set -euo pipefail
cd "$(dirname "$0")/.."

BUDGET=${BUDGET:-120}

go test -race ./internal/sim \
	-run 'TestSlotIndexProperty|TestKillDuringBatchedSlotFree|TestIndexedMatchesLegacyDispatch'
go test -race ./internal/sched -run 'TestScale'

BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT
go build -o "$BIN/lips-sim" ./cmd/lips-sim
go build -o "$BIN/lips-trace" ./cmd/lips-trace

args=(-scale 1000 -scheduler scale -seed 1 -sample-interval 120)

start=$SECONDS
"$BIN/lips-sim" "${args[@]}" -trace "$BIN/run.jsonl" >"$BIN/run.out"
elapsed=$((SECONDS - start))
sed 's/^/scalesmoke: /' "$BIN/run.out"
echo "scalesmoke: 1k-node run took ${elapsed}s (budget ${BUDGET}s)"
if [ "$elapsed" -gt "$BUDGET" ]; then
	echo "scalesmoke: FAIL: -scale 1000 run exceeded the ${BUDGET}s budget" >&2
	exit 1
fi

"$BIN/lips-trace" -validate "$BIN/run.jsonl" | sed 's/^/scalesmoke: /'

# Same seed, same trace — byte for byte at scale.
"$BIN/lips-sim" "${args[@]}" -trace "$BIN/run2.jsonl" >/dev/null
if ! cmp -s "$BIN/run.jsonl" "$BIN/run2.jsonl"; then
	echo "scalesmoke: FAIL: repeated seeded -scale run wrote a different JSONL trace" >&2
	exit 1
fi

echo "scalesmoke: OK"
