#!/usr/bin/env bash
# Trace smoke: runs the trace unit tests, then drives a full seeded
# lips-sim run with -trace in both formats and checks the pipeline end
# to end — the JSONL log schema-validates under lips-trace -validate,
# the inspection report renders every section, the CSV export matches
# the sampler's column contract, repeating the run reproduces the JSONL
# byte-for-byte, and the Chrome export parses as a JSON array.
#
# Usage: scripts/tracesmoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

go test ./internal/trace ./cmd/lips-trace -run 'Trace|Chrome|JSONL|Sampler|Validate|Run'

BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT
go build -o "$BIN/lips-sim" ./cmd/lips-sim
go build -o "$BIN/lips-trace" ./cmd/lips-trace

args=(-cluster paper20 -workload paper -scheduler lips
	-faults 1 -fault-slowdowns 1 -fault-seed 7 -sample-interval 120)

"$BIN/lips-sim" "${args[@]}" -trace "$BIN/run.jsonl" >/dev/null
"$BIN/lips-trace" -validate "$BIN/run.jsonl" | sed 's/^/tracesmoke: /'

REPORT=$("$BIN/lips-trace" -top 5 -csv "$BIN/series.csv" "$BIN/run.jsonl")
for section in 'cost over time:' 'epoch timeline:' 'slowest tasks:' 'per-node utilization'; do
	if ! printf '%s\n' "$REPORT" | grep -q "$section"; then
		echo "tracesmoke: FAIL: lips-trace report missing \"$section\"" >&2
		exit 1
	fi
done
if ! head -1 "$BIN/series.csv" | grep -q '^t_sec,total_uc,'; then
	echo "tracesmoke: FAIL: CSV export header wrong: $(head -1 "$BIN/series.csv")" >&2
	exit 1
fi

# Same seed, same trace — byte for byte.
"$BIN/lips-sim" "${args[@]}" -trace "$BIN/run2.jsonl" >/dev/null
if ! cmp -s "$BIN/run.jsonl" "$BIN/run2.jsonl"; then
	echo "tracesmoke: FAIL: repeated seeded run wrote a different JSONL trace" >&2
	exit 1
fi

# Chrome export must be a well-formed JSON array Perfetto can load.
"$BIN/lips-sim" "${args[@]}" -trace "$BIN/run.json" -trace-format chrome >/dev/null
if command -v jq >/dev/null 2>&1; then
	records=$(jq 'length' "$BIN/run.json")
	phases=$(jq -r '[.[].ph] | unique | join(",")' "$BIN/run.json")
	echo "tracesmoke: chrome export: $records records, phases {$phases}"
	for ph in M X i C; do
		if ! jq -e --arg p "$ph" 'any(.[]; .ph == $p)' "$BIN/run.json" >/dev/null; then
			echo "tracesmoke: FAIL: chrome export has no \"$ph\" records" >&2
			exit 1
		fi
	done
else
	head -c1 "$BIN/run.json" | grep -q '\[' || {
		echo "tracesmoke: FAIL: chrome export is not a JSON array" >&2
		exit 1
	}
	echo "tracesmoke: jq not available; chrome export only shape-checked"
fi

echo "tracesmoke: OK"
