#!/usr/bin/env bash
# Fault-injection smoke: races the fault-path unit tests, then drives a
# short seeded churn scenario (2 crashes + recoveries, 1 store loss,
# 1 straggler window) through every scheduler and fails unless each run
# reports fault damage and reproduces bit-identically when repeated.
#
# Usage: scripts/faultsmoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

go test -race ./internal/sim ./internal/sched \
	-run 'Fault|Churn|Crash|StoreLoss|Slowdown|Kill|Unqueue|MaxAttempts'

BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT
go build -o "$BIN/lips-sim" ./cmd/lips-sim

fail=0
for sched in fifo delay fair lips; do
	args=(-cluster paper20 -workload paper -scheduler "$sched"
		-faults 2 -fault-stores 1 -fault-slowdowns 1 -fault-seed 7)
	# The lips: stats line carries wall-clock solve time; everything else
	# must be byte-identical across runs.
	one=$("$BIN/lips-sim" "${args[@]}" | grep -v '^lips:')
	two=$("$BIN/lips-sim" "${args[@]}" | grep -v '^lips:')
	if [ "$one" != "$two" ]; then
		echo "faultsmoke: FAIL: $sched churn run not reproducible" >&2
		diff <(printf '%s\n' "$one") <(printf '%s\n' "$two") >&2 || true
		fail=1
		continue
	fi
	if ! printf '%s\n' "$one" | grep -q '^faults:'; then
		echo "faultsmoke: FAIL: $sched run reported no fault damage" >&2
		fail=1
		continue
	fi
	printf '%s\n' "$one" | awk -v s="$sched" '/^faults:/ { print "faultsmoke: " s ": " $0 }'
done
exit "$fail"
