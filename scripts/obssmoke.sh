#!/usr/bin/env bash
# Observability smoke: runs the obs unit tests, then starts a live
# lips-sim -listen run on loopback and scrapes it mid-run — /healthz
# answers, /metrics serves a well-formed Prometheus exposition carrying
# the sim, sched and LP families with live (nonzero) values, /progress
# returns the JSON snapshot with the Sampler-aligned field names, and
# /debug/pprof/profile captures a CPU profile — all while the simulation
# is still running. The workload is sized to run well past the scrape
# window; the run is killed once the checks pass.
#
# Usage: scripts/obssmoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

go test ./internal/obs ./internal/sim -run 'Obs|Prom|Histogram|Progress|Server|Scrape|LiveMetrics'

BIN=$(mktemp -d)
SIM_PID=
cleanup() {
	[ -n "$SIM_PID" ] && kill "$SIM_PID" 2>/dev/null || true
	rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/lips-sim" ./cmd/lips-sim

# ~13 s of wall-clock on a dev laptop — a wide window to scrape inside.
"$BIN/lips-sim" -cluster paper100 -workload random -tasks 10000 \
	-scheduler lips -seed 1 -listen 127.0.0.1:0 >"$BIN/sim.log" 2>&1 &
SIM_PID=$!

# The serving URL is printed before the run starts.
URL=
for _ in $(seq 1 100); do
	URL=$(sed -n 's|^metrics: serving \(http://[^/]*\)/metrics$|\1|p' "$BIN/sim.log")
	[ -n "$URL" ] && break
	kill -0 "$SIM_PID" 2>/dev/null || { echo "obssmoke: FAIL: lips-sim exited before serving" >&2; cat "$BIN/sim.log" >&2; exit 1; }
	sleep 0.1
done
if [ -z "$URL" ]; then
	echo "obssmoke: FAIL: no serving URL in lips-sim output" >&2
	cat "$BIN/sim.log" >&2
	exit 1
fi
echo "obssmoke: scraping $URL (pid $SIM_PID)"

curl -fsS "$URL/healthz" | grep -qx ok || { echo "obssmoke: FAIL: /healthz" >&2; exit 1; }

# Poll /metrics until the run is demonstrably live: tasks completing,
# epochs solving, LPs iterating.
live=
for _ in $(seq 1 200); do
	kill -0 "$SIM_PID" 2>/dev/null || { echo "obssmoke: FAIL: lips-sim exited before the scrape" >&2; cat "$BIN/sim.log" >&2; exit 1; }
	curl -fsS "$URL/metrics" >"$BIN/metrics.txt"
	if awk '
		$1 == "lips_sim_tasks_done_total" && $2 > 0 { done = 1 }
		$1 == "lips_sched_epochs_total"   && $2 > 0 { epochs = 1 }
		$1 == "lips_lp_solves_total"      && $2 > 0 { solves = 1 }
		END { exit !(done && epochs && solves) }' "$BIN/metrics.txt"; then
		live=1
		break
	fi
	sleep 0.1
done
[ -n "$live" ] || { echo "obssmoke: FAIL: metrics never went live:" >&2; cat "$BIN/metrics.txt" >&2; exit 1; }

# Exposition shape: every non-comment line is `name[{labels}] value`, and
# every family is preceded by HELP and TYPE lines.
awk '
	/^# (HELP|TYPE) / { next }
	/^#/ { print "bad comment: " $0; bad = 1; next }
	!/^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9+]/ { print "bad sample line: " $0; bad = 1 }
	END { exit bad }' "$BIN/metrics.txt" || { echo "obssmoke: FAIL: malformed exposition" >&2; exit 1; }

# Required families, with their advertised types.
for fam in \
	'lips_sim_tasks gauge' \
	'lips_sim_cost_microcents_total counter' \
	'lips_sim_tasks_launched_total counter' \
	'lips_sched_epochs_total counter' \
	'lips_sched_epoch_iterations histogram' \
	'lips_lp_solves_total counter' \
	'lips_lp_iterations_total counter'; do
	if ! grep -q "^# TYPE $fam\$" "$BIN/metrics.txt"; then
		echo "obssmoke: FAIL: /metrics missing family \"$fam\"" >&2
		exit 1
	fi
done

# /progress carries the Sampler-aligned field names (units pinned by
# TestProgressMatchesSamplerCSV) plus the scheduler extras.
curl -fsS "$URL/progress" >"$BIN/progress.json"
for field in t_sec total_uc cpu_uc transfer_uc running queued pending done \
	free_slots live_slots busy_slot_sec node_local epoch deferred_tasks faults_injected; do
	if ! grep -q "\"$field\":" "$BIN/progress.json"; then
		echo "obssmoke: FAIL: /progress missing field \"$field\": $(cat "$BIN/progress.json")" >&2
		exit 1
	fi
done

# A short CPU profile captured from the live process.
curl -fsS -o "$BIN/cpu.pb.gz" "$URL/debug/pprof/profile?seconds=1"
[ -s "$BIN/cpu.pb.gz" ] || { echo "obssmoke: FAIL: empty CPU profile" >&2; exit 1; }

kill -0 "$SIM_PID" 2>/dev/null || { echo "obssmoke: FAIL: lips-sim died during the scrape" >&2; cat "$BIN/sim.log" >&2; exit 1; }
echo "obssmoke: $(grep -c '^lips_' "$BIN/metrics.txt") series live; progress: $(cat "$BIN/progress.json")"
echo "obssmoke: OK"
