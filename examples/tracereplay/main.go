// Tracereplay: synthesize a SWIM-like Facebook day, round-trip it through
// the TSV trace codec, and replay it on the paper's 100-node testbed
// under all three schedulers — the Fig. 9/10 experiment as a program.
//
//	go run ./examples/tracereplay [-jobs 80] [-trace file.tsv]
//
// With -trace, the workload is loaded from an existing TSV (written by
// this tool or converted from a SWIM trace) instead of synthesized.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"lips/internal/cluster"
	"lips/internal/sched"
	"lips/internal/sim"
	"lips/internal/workload"
)

func main() {
	jobs := flag.Int("jobs", 80, "jobs to synthesize when no -trace is given")
	tracePath := flag.String("trace", "", "replay this TSV trace instead of synthesizing")
	save := flag.String("save", "", "also write the synthesized trace to this path")
	flag.Parse()

	c := cluster.Paper100()
	stores := make([]cluster.StoreID, len(c.Stores))
	for i := range stores {
		stores[i] = cluster.StoreID(i)
	}

	load := func() *workload.Workload {
		rng := rand.New(rand.NewSource(99))
		if *tracePath != "" {
			f, err := os.Open(*tracePath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w, err := workload.ReadTrace(f, rng, stores)
			if err != nil {
				log.Fatal(err)
			}
			return w
		}
		w := workload.SWIM(rng, stores, workload.SWIMSpec{Jobs: *jobs, DurationSec: 6 * 3600})
		// Round-trip through the codec to prove the format is lossless.
		var buf bytes.Buffer
		if err := workload.WriteTrace(&buf, w); err != nil {
			log.Fatal(err)
		}
		if *save != "" {
			if err := os.WriteFile(*save, buf.Bytes(), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("trace written to %s\n", *save)
		}
		w2, err := workload.ReadTrace(&buf, rand.New(rand.NewSource(99)), stores)
		if err != nil {
			log.Fatal(err)
		}
		return w2
	}

	w := load()
	fmt.Printf("replaying %d jobs / %d map tasks / %.1f GB on %d nodes\n",
		len(w.Jobs), w.TotalTasks(), w.TotalInputMB()/1024, len(c.Nodes))
	fmt.Println("(reduce stages: see TestFullMapReducePipeline and workload.ExpandReduces)")
	fmt.Println()

	fmt.Println("scheduler        cost       makespan    Σ job time")
	var defaultCost float64
	for _, name := range []string{"default", "delay", "lips"} {
		var s sim.Scheduler
		opts := sim.Options{}
		switch name {
		case "default":
			s = sched.NewFIFO()
		case "delay":
			s = sched.NewDelay()
		case "lips":
			s = sched.NewLiPS(600)
			opts.TaskTimeoutSec = 1200
		}
		w := load()
		rng := rand.New(rand.NewSource(100))
		p := w.Placement()
		p.Shuffle(rng, stores)
		r, err := sim.New(c, w, p, s, opts).Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %-10v %7.0f s   %8.0f s\n", r.Scheduler, r.TotalCost(), r.Makespan, r.SumJobSec)
		if name == "default" {
			defaultCost = r.TotalCost().ToDollars()
		}
		if name == "lips" {
			fmt.Printf("\nLiPS reduction vs default: %.0f%% (paper Fig. 9: 68–69%%)\n",
				100*(1-r.TotalCost().ToDollars()/defaultCost))
		}
	}
}
