// Costsaving: reproduce the paper's node-diversity experiment (Fig. 6) in
// miniature — as c1.medium nodes (4–5x cheaper per ECU-second) join a
// m1.medium cluster, LiPS's dollar savings over the Hadoop default and
// delay schedulers grow.
//
//	go run ./examples/costsaving
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lips/internal/cluster"
	"lips/internal/sched"
	"lips/internal/sim"
	"lips/internal/workload"
)

func main() {
	fmt.Println("frac-c1  default    delay      lips       saving-vs-default")
	for _, fracC1 := range []float64{0, 0.25, 0.5} {
		costs := map[string]float64{}
		for _, name := range []string{"default", "delay", "lips"} {
			c := cluster.Paper20(fracC1)
			// Data lives on the original m1.medium nodes, as in the
			// paper's gradually-expanded testbed; added c1.medium nodes
			// start empty.
			var stores []cluster.StoreID
			for _, n := range c.Nodes {
				if n.Type == "m1.medium" {
					stores = append(stores, n.Store)
				}
			}
			rng := rand.New(rand.NewSource(11))
			wb := workload.NewBuilder()
			pick := func() cluster.StoreID { return stores[rng.Intn(len(stores))] }
			// A half-scale Table IV mix — enough demand that the
			// cheap nodes alone cannot absorb it in one epoch.
			wb.AddInputJob("wc-1", "u1", workload.WordCount, 5*1024, pick(), 0)
			wb.AddInputJob("wc-2", "u1", workload.WordCount, 5*1024, pick(), 0)
			wb.AddInputJob("grep-1", "u2", workload.Grep, 10*1024, pick(), 0)
			wb.AddInputJob("grep-2", "u2", workload.Grep, 10*1024, pick(), 0)
			wb.AddInputJob("stress-1", "u3", workload.Stress2, 5*1024, pick(), 0)
			wb.AddInputJob("stress-2", "u3", workload.Stress2, 5*1024, pick(), 0)
			w := wb.Build()
			p := w.Placement()
			p.Shuffle(rng, stores)

			var s sim.Scheduler
			opts := sim.Options{}
			switch name {
			case "default":
				s = sched.NewFIFO()
			case "delay":
				s = sched.NewDelay()
			case "lips":
				s = sched.NewLiPS(600)
				opts.TaskTimeoutSec = 1200
			}
			r, err := sim.New(c, w, p, s, opts).Run()
			if err != nil {
				log.Fatal(err)
			}
			costs[name] = r.TotalCost().ToDollars()
		}
		saving := 100 * (1 - costs["lips"]/costs["default"])
		fmt.Printf("%5.0f%%   $%.4f    $%.4f    $%.4f    %.0f%%\n",
			100*fracC1, costs["default"], costs["delay"], costs["lips"], saving)
	}
	fmt.Println("\nThe paper's Fig. 6 reports 62% savings growing to 79–81% as half the")
	fmt.Println("cluster becomes c1.medium; the shape — savings growing with node")
	fmt.Println("diversity — reproduces here (see EXPERIMENTS.md for the full runs).")
}
