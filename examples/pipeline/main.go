// Pipeline: schedule a DAG-structured ETL workload (the paper's §III
// "workloads with inter-task dependencies ... reduced to the independent
// task setting through leveling") under LiPS, and compare the realized
// makespan against the DAG's critical-path lower bound.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/dag"
	"lips/internal/sched"
	"lips/internal/sim"
	"lips/internal/workload"
)

func main() {
	// Cluster: three cheap c1.medium and three pricey m1.medium nodes.
	b := cluster.NewBuilder(cluster.PaperZones...)
	for i := 0; i < 3; i++ {
		b.AddInstance(cluster.PaperZones[i], cost.M1Medium)
		b.AddInstance(cluster.PaperZones[i], cost.C1Medium)
	}
	c := b.Build()

	// An ETL diamond: ingest fans out to three cleaning jobs, which feed
	// a final join.
	rng := rand.New(rand.NewSource(21))
	wb := workload.NewBuilder()
	pick := func() cluster.StoreID { return cluster.StoreID(rng.Intn(len(c.Stores))) }
	wb.AddInputJob("ingest", "etl", workload.Grep, 16*64, pick(), 0)
	wb.AddInputJob("clean-logs", "etl", workload.Stress2, 8*64, pick(), 0)
	wb.AddInputJob("clean-web", "etl", workload.Stress2, 8*64, pick(), 0)
	wb.AddInputJob("clean-db", "etl", workload.Stress2, 8*64, pick(), 0)
	wb.AddInputJob("join-report", "etl", workload.WordCount, 8*64, pick(), 0)
	w := wb.Build()
	deps := dag.FanOutIn(5)

	if err := dag.Validate(len(w.Jobs), deps); err != nil {
		log.Fatal(err)
	}
	levels, _ := dag.Levels(len(w.Jobs), deps)
	cp, _ := dag.CriticalPathCPUSec(w, deps)
	fmt.Printf("DAG: %d jobs in %d levels; critical path %.0f ECU-seconds\n",
		len(w.Jobs), len(levels), cp)
	for li, level := range levels {
		names := ""
		for _, j := range level {
			names += w.Jobs[j].Name + " "
		}
		fmt.Printf("  level %d: %s\n", li, names)
	}

	l := sched.NewLiPS(120)
	r, err := sim.New(c, w, nil, l, sim.Options{Deps: deps, TaskTimeoutSec: 1200}).Run()
	if err != nil {
		log.Fatal(err)
	}
	if l.Err != nil {
		log.Fatal(l.Err)
	}
	fmt.Printf("\nLiPS: cost %v, makespan %.0f s (%d epochs)\n",
		r.TotalCost(), r.Makespan, l.Epochs)
	fmt.Println("\nstage completions:")
	for j, done := range r.JobDone {
		fmt.Printf("  %-12s done at %6.0f s\n", w.Jobs[j].Name, done)
	}
}
