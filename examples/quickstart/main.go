// Quickstart: build a small heterogeneous cluster, submit a handful of
// MapReduce jobs, and compare the dollar cost of the Hadoop default
// scheduler against LiPS.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lips/internal/cluster"
	"lips/internal/cost"
	"lips/internal/sched"
	"lips/internal/sim"
	"lips/internal/workload"
)

func main() {
	// A six-node cluster over the paper's three availability zones:
	// three m1.medium (expensive ECU-seconds) and three c1.medium
	// (4–5x cheaper per ECU-second).
	build := func() (*cluster.Cluster, *workload.Workload) {
		b := cluster.NewBuilder(cluster.PaperZones...)
		for i := 0; i < 3; i++ {
			b.AddInstance(cluster.PaperZones[i], cost.M1Medium)
		}
		for i := 0; i < 3; i++ {
			b.AddInstance(cluster.PaperZones[i], cost.C1Medium)
		}
		c := b.Build()

		// Four jobs from the paper's Table I benchmark suite, inputs
		// pre-loaded on the m1.medium stores.
		rng := rand.New(rand.NewSource(7))
		wb := workload.NewBuilder()
		pick := func() cluster.StoreID { return cluster.StoreID(rng.Intn(3)) }
		wb.AddInputJob("grep-logs", "alice", workload.Grep, 32*64, pick(), 0)
		wb.AddInputJob("wordcount-web", "bob", workload.WordCount, 16*64, pick(), 0)
		wb.AddInputJob("stress-etl", "carol", workload.Stress2, 16*64, pick(), 0)
		wb.AddNoInputJob("pi-montecarlo", "dave", 2, workload.PiTaskCPUSec, 0)
		return c, wb.Build()
	}

	run := func(s sim.Scheduler, opts sim.Options) *sim.Result {
		c, w := build()
		r, err := sim.New(c, w, nil, s, opts).Run()
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	fifo := run(sched.NewFIFO(), sim.Options{})
	lips := sched.NewLiPS(400)
	lipsRes := run(lips, sim.Options{TaskTimeoutSec: 1200})
	if lips.Err != nil {
		log.Fatal(lips.Err)
	}

	fmt.Println("scheduler        cost      makespan  node-local")
	for _, r := range []*sim.Result{fifo, lipsRes} {
		fmt.Printf("%-16s %-9v %6.0f s  %5.1f%%\n",
			r.Scheduler, r.TotalCost(), r.Makespan, 100*r.Locality.LocalFraction())
	}
	saving := 1 - float64(lipsRes.TotalCost())/float64(fifo.TotalCost())
	fmt.Printf("\nLiPS saved %.0f%% of the dollar cost (%d LP epochs, %v in the solver),\n",
		100*saving, lips.Epochs, lips.SolveTime)
	fmt.Printf("trading a %.1fx longer makespan — the paper's core cost/performance trade.\n",
		lipsRes.Makespan/fifo.Makespan)
}
