// Epochtuning: sweep LiPS's scheduling epoch to expose the paper's Fig. 8
// cost/performance dial — longer epochs chase cheap nodes harder (lower
// dollar cost) while jobs wait longer (higher execution time).
//
//	go run ./examples/epochtuning
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lips/internal/cluster"
	"lips/internal/sched"
	"lips/internal/sim"
	"lips/internal/workload"
)

func main() {
	fmt.Println("epoch    cost       makespan   Σ job time   blocks moved")
	for _, epoch := range []float64{100, 200, 400, 600, 800} {
		c := cluster.Paper20(0.5)
		stores := make([]cluster.StoreID, len(c.Stores))
		for i := range stores {
			stores[i] = cluster.StoreID(i)
		}
		rng := rand.New(rand.NewSource(3))
		wb := workload.NewBuilder()
		// One burst of work exceeding the cheap nodes' per-epoch
		// capacity: with a short epoch the LP must buy expensive
		// ECU-seconds to fit the window; a long epoch lets everything
		// queue onto the cheap nodes.
		for i := 0; i < 16; i++ {
			wb.AddInputJob(fmt.Sprintf("job-%d", i), "u", workload.Stress2,
				16*64, stores[rng.Intn(len(stores))], 0)
		}
		w := wb.Build()
		p := w.Placement()
		p.Shuffle(rng, stores)

		l := sched.NewLiPS(epoch)
		r, err := sim.New(c, w, p, l, sim.Options{TaskTimeoutSec: 1200}).Run()
		if err != nil {
			log.Fatal(err)
		}
		if l.Err != nil {
			log.Fatal(l.Err)
		}
		fmt.Printf("%4.0f s   %-9v  %6.0f s   %7.0f s    %d\n",
			epoch, r.TotalCost(), r.Makespan, r.SumJobSec, l.BlocksMoved)
	}
	fmt.Println("\nShort epochs approach greedy scheduling (fast, pricier); long epochs")
	fmt.Println("batch more jobs per LP and squeeze onto the cheapest nodes (slow,")
	fmt.Println("cheaper) — the knob the paper exposes to tune cost vs makespan.")
}
