// Package lips is a from-scratch reproduction of "LiPS: A Cost-Efficient
// Data and Task Co-Scheduler for MapReduce" (Ehsan, Chen, Kang, Sion,
// Wong — IPDPS 2013).
//
// The repository contains the LiPS linear-programming co-scheduler
// (internal/core), a bounded-variable revised simplex solver replacing
// GLPK (internal/lp), a discrete-event Hadoop-like cluster simulator
// replacing the paper's EC2 testbed (internal/sim), the baseline
// schedulers the paper compares against (internal/sched), the paper's
// workloads (internal/workload) and an experiment harness regenerating
// every table and figure of the evaluation (internal/experiments).
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-versus-measured results. The root-level
// benchmarks (bench_test.go) regenerate each experiment:
//
//	go test -bench=. -benchmem
package lips
