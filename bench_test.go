package lips

// One benchmark per table and figure of the paper's evaluation. Each
// regenerates its artifact through internal/experiments at Quick scale so
// that `go test -bench=.` finishes promptly; pass -full to cmd/lips-bench
// for the paper-size runs. Key result values are attached as custom
// benchmark metrics.

import (
	"testing"

	"lips/internal/experiments"
)

var benchCfg = experiments.Config{Quick: true, Seed: 42}

func BenchmarkTable1CPUIntensiveness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3InstanceCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table3() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable4JobSet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table4() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig1BreakEven(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig1(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		saving = r.Rows[len(r.Rows)-1].SavingPct
	}
	b.ReportMetric(saving, "pi_saving_%")
}

func BenchmarkFig5CostReductionVsSize(b *testing.B) {
	var largest float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		largest = r.Points[len(r.Points)-1].MeanReductionPct
	}
	b.ReportMetric(largest, "reduction_%")
}

func BenchmarkFig6CostReduction20Nodes(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		reduction = 100 * r.Rows[len(r.Rows)-1].ReductionVsDelay
	}
	b.ReportMetric(reduction, "reduction_vs_delay_%")
}

func BenchmarkFig7ExecutionTime20Nodes(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		// LiPS makespan relative to the delay scheduler on setting (iii).
		slowdown = r.Rows[8].Makespan / r.Rows[7].Makespan
	}
	b.ReportMetric(slowdown, "lips/delay_makespan")
}

func BenchmarkFig8EpochSweep(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
		spread = first.Cost.ToDollars() - last.Cost.ToDollars()
	}
	b.ReportMetric(spread, "cost_drop_$")
}

func BenchmarkFig9Cost100Nodes(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		reduction = 100 * r.Rows[2].ReductionVsDefault
	}
	b.ReportMetric(reduction, "reduction_vs_default_%")
}

// BenchmarkFig9ColdStartLP reruns the 100-node experiment with
// epoch-to-epoch basis reuse disabled — the seed's solve behaviour. The
// gap to BenchmarkFig9Cost100Nodes is the end-to-end warm-start win.
func BenchmarkFig9ColdStartLP(b *testing.B) {
	cfg := benchCfg
	cfg.ColdStart = true
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9ParallelPricingLP runs the 100-node experiment with the
// pricing step fanned out over four workers; results are bit-identical to
// the sequential run by construction.
func BenchmarkFig9ParallelPricingLP(b *testing.B) {
	cfg := benchCfg
	cfg.LPWorkers = 4
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10ExecutionTime100Nodes(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.Rows[2].SumJobSec / r.Rows[1].SumJobSec
	}
	b.ReportMetric(ratio, "lips/delay_jobtime")
}

func BenchmarkFig11CPUBreakdown(b *testing.B) {
	var active float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		active = float64(r.Runs[0].ActiveNodes)
	}
	b.ReportMetric(active, "active_nodes_e400")
}

func BenchmarkSchedulerOverhead(b *testing.B) {
	var solveMs float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Overhead(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		solveMs = r.Rows[len(r.Rows)-1].SolveMillis
	}
	b.ReportMetric(solveMs, "lp_solve_ms")
}

func BenchmarkAblationFakeNode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFakeNode(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRounding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationRounding(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBilling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationBilling(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPricing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPricing(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTransferConstraint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTransferConstraint(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationContention(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaselinesShootout(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Baselines(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpotMarket(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.SpotMarket(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last := r.Rows[len(r.Rows)-1]
		penalty = 100 * (float64(last.SpotCost)/float64(last.StaticCost) - 1)
	}
	b.ReportMetric(penalty, "repricing_spot_penalty_%")
}
